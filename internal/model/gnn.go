package model

import (
	"math"
	"math/rand"

	"torchgt/internal/attention"
	"torchgt/internal/graph"
	"torchgt/internal/nn"
	"torchgt/internal/sparse"
	"torchgt/internal/tensor"
)

// spmm is symmetric-normalised adjacency multiplication y = Â·x with
// Â = D^{-1/2}(A+I)D^{-1/2}; since Â is symmetric the backward pass reuses
// the same operator.
type spmm struct {
	g    *graph.Graph // with self loops
	coef []float32    // per stored edge
}

func newSpmm(g *graph.Graph) *spmm {
	gl := g.WithSelfLoops()
	dinv := make([]float32, gl.N)
	for i := 0; i < gl.N; i++ {
		dinv[i] = float32(1.0 / math.Sqrt(float64(gl.Degree(i))))
	}
	coef := make([]float32, gl.NumEdges())
	idx := 0
	for u := 0; u < gl.N; u++ {
		for _, v := range gl.Neighbors(u) {
			coef[idx] = dinv[u] * dinv[v]
			idx++
		}
	}
	return &spmm{g: gl, coef: coef}
}

func (s *spmm) apply(ws *tensor.Workspace, x *tensor.Mat) *tensor.Mat {
	y := ws.Get(x.Rows, x.Cols)
	tensor.ParallelFor(s.g.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y.Row(i)
			for e := s.g.RowPtr[i]; e < s.g.RowPtr[i+1]; e++ {
				tensor.Axpy(s.coef[e], x.Row(int(s.g.ColIdx[e])), yi)
			}
		}
	})
	return y
}

// GCN is the 2-layer graph convolutional network baseline of Table I:
// logits = Â·ReLU(Â·X·W1)·W2.
type GCN struct {
	A        *spmm
	L1, L2   *nn.Linear
	Act      *nn.ReLU
	Drop     *nn.Dropout
	hidCache *tensor.Mat

	rt *Runtime
}

// SetRuntime attaches an execution engine (nil → unpooled).
func (m *GCN) SetRuntime(rt *Runtime) { m.rt = rt }

// NewGCN builds the baseline for graph g.
func NewGCN(g *graph.Graph, inDim, hidden, outDim int, dropout float64, seed int64) *GCN {
	rng := rand.New(rand.NewSource(seed))
	return &GCN{
		A:    newSpmm(g),
		L1:   nn.NewLinear("gcn.l1", inDim, hidden, true, rng),
		L2:   nn.NewLinear("gcn.l2", hidden, outDim, true, rng),
		Act:  &nn.ReLU{},
		Drop: nn.NewDropout(dropout, seed+1),
		rt:   DefaultRuntime(),
	}
}

// Params implements nn.Module.
func (m *GCN) Params() []*nn.Param { return nn.CollectParams(m.L1, m.L2) }

// Forward computes node logits.
func (m *GCN) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	m.rt.StepReset()
	ws := m.rt.workspace(0)
	h := m.Act.Forward(m.L1.Forward(m.A.apply(ws, x)))
	h = m.Drop.Forward(h, train)
	m.hidCache = h
	return m.L2.Forward(m.A.apply(ws, h))
}

// Backward accumulates parameter gradients from dLogits. The gradient
// w.r.t. the input features is never propagated further, so it is not
// computed.
func (m *GCN) Backward(dLogits *tensor.Mat) {
	ws := m.rt.workspace(0)
	dh := m.A.apply(ws, m.L2.Backward(dLogits)) // Â symmetric
	dh = m.Drop.Backward(dh)
	m.L1.Backward(m.Act.Backward(dh))
}

// GAT is a 2-layer graph attention baseline. As documented in DESIGN.md it
// uses the dot-product variant of neighbourhood attention (scores
// q_i·k_j/√d over graph edges, softmax per neighbourhood) rather than GAT's
// additive LeakyReLU scoring — the neighbourhood-attention structure that
// Table I contrasts with transformers is preserved.
type GAT struct {
	P          *sparse.Pattern
	WQ1, WK1   *nn.Linear
	WV1        *nn.Linear
	WQ2, WK2   *nn.Linear
	WV2        *nn.Linear
	Out        *nn.Linear
	Act        *nn.ReLU
	att1, att2 *attention.Sparse

	rt *Runtime
}

// SetRuntime attaches an execution engine (nil → unpooled).
func (m *GAT) SetRuntime(rt *Runtime) { m.rt = rt }

// NewGAT builds the baseline over graph g.
func NewGAT(g *graph.Graph, inDim, hidden, outDim int, seed int64) *GAT {
	rng := rand.New(rand.NewSource(seed))
	p := sparse.FromGraph(g)
	return &GAT{
		P:   p,
		WQ1: nn.NewLinear("gat.q1", inDim, hidden, true, rng),
		WK1: nn.NewLinear("gat.k1", inDim, hidden, true, rng),
		WV1: nn.NewLinear("gat.v1", inDim, hidden, true, rng),
		WQ2: nn.NewLinear("gat.q2", hidden, hidden, true, rng),
		WK2: nn.NewLinear("gat.k2", hidden, hidden, true, rng),
		WV2: nn.NewLinear("gat.v2", hidden, hidden, true, rng),
		Out: nn.NewLinear("gat.out", hidden, outDim, true, rng),
		Act: &nn.ReLU{},
		rt:  DefaultRuntime(),
	}
}

// Params implements nn.Module.
func (m *GAT) Params() []*nn.Param {
	return nn.CollectParams(m.WQ1, m.WK1, m.WV1, m.WQ2, m.WK2, m.WV2, m.Out)
}

// Forward computes node logits.
func (m *GAT) Forward(x *tensor.Mat, train bool) *tensor.Mat {
	m.rt.StepReset()
	ws := m.rt.workspace(0)
	m.att1 = attention.NewSparse(m.P)
	m.att1.SetWorkspace(ws)
	h := m.att1.Forward(m.WQ1.Forward(x), m.WK1.Forward(x), m.WV1.Forward(x))
	h = m.Act.Forward(h)
	m.att2 = attention.NewSparse(m.P)
	m.att2.SetWorkspace(ws)
	h2 := m.att2.Forward(m.WQ2.Forward(h), m.WK2.Forward(h), m.WV2.Forward(h))
	return m.Out.Forward(h2)
}

// Backward accumulates parameter gradients.
func (m *GAT) Backward(dLogits *tensor.Mat) {
	dh2 := m.Out.Backward(dLogits)
	dq2, dk2, dv2 := m.att2.Backward(dh2)
	dh := m.WQ2.Backward(dq2)
	tensor.AddInPlace(dh, m.WK2.Backward(dk2))
	tensor.AddInPlace(dh, m.WV2.Backward(dv2))
	dh = m.Act.Backward(dh)
	dq1, dk1, dv1 := m.att1.Backward(dh)
	m.WQ1.Backward(dq1)
	m.WK1.Backward(dk1)
	m.WV1.Backward(dv1)
}

// GCNGraph is a graph-level GCN baseline (Table I's ZINC column): two GCN
// layers over each small graph followed by mean pooling and a linear head.
type GCNGraph struct {
	L1, L2 *nn.Linear
	Head   *nn.Linear
	Act    *nn.ReLU

	a        *spmm
	poolRows int
	hid      *tensor.Mat

	rt *Runtime
}

// SetRuntime attaches an execution engine (nil → unpooled).
func (m *GCNGraph) SetRuntime(rt *Runtime) { m.rt = rt }

// NewGCNGraph builds the baseline.
func NewGCNGraph(inDim, hidden, outDim int, seed int64) *GCNGraph {
	rng := rand.New(rand.NewSource(seed))
	return &GCNGraph{
		L1:   nn.NewLinear("gcng.l1", inDim, hidden, true, rng),
		L2:   nn.NewLinear("gcng.l2", hidden, hidden, true, rng),
		Head: nn.NewLinear("gcng.head", hidden, outDim, true, rng),
		Act:  &nn.ReLU{},
		rt:   DefaultRuntime(),
	}
}

// Params implements nn.Module.
func (m *GCNGraph) Params() []*nn.Param { return nn.CollectParams(m.L1, m.L2, m.Head) }

// Forward computes one graph's output (1×OutDim) via mean pooling.
func (m *GCNGraph) Forward(g *graph.Graph, x *tensor.Mat) *tensor.Mat {
	m.rt.StepReset()
	ws := m.rt.workspace(0)
	m.a = newSpmm(g)
	h := m.Act.Forward(m.L1.Forward(m.a.apply(ws, x)))
	h = m.L2.Forward(m.a.apply(ws, h))
	m.hid = h
	m.poolRows = h.Rows
	pooled := ws.Get(1, h.Cols)
	for i := 0; i < h.Rows; i++ {
		tensor.Axpy(1.0/float32(h.Rows), h.Row(i), pooled.Row(0))
	}
	return m.Head.Forward(pooled)
}

// Backward accumulates gradients from dOut (1×OutDim).
func (m *GCNGraph) Backward(dOut *tensor.Mat) {
	ws := m.rt.workspace(0)
	dPooled := m.Head.Backward(dOut)
	dh := ws.Get(m.poolRows, dPooled.Cols)
	for i := 0; i < m.poolRows; i++ {
		tensor.Axpy(1.0/float32(m.poolRows), dPooled.Row(0), dh.Row(i))
	}
	dh = m.a.apply(ws, m.L2.Backward(dh))
	dh = m.Act.Backward(dh)
	m.L1.Backward(dh)
}
