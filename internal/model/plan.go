package model

import (
	"fmt"

	"torchgt/internal/dist"
	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// Plan is the execution strategy of a model: how the attention-head section
// of every Block/MHA is scheduled and where its scratch memory lives. The
// model's layers dispatch through the attached Plan, so the parallel
// strategy is pluggable:
//
//   - *Runtime — the single-process engine: heads fan out across worker-slot
//     workspaces (Workers: 1 degrades to fully sequential execution). A nil
//     *Runtime is itself a valid Plan: sequential, heap-allocated.
//   - *SeqParallel — the simulated multi-GPU engine: P rank goroutines own
//     S/P sequence rows each and reshard sequence↔heads through dist.Comm
//     all-to-alls at every attention boundary (the DeepSpeed-Ulysses pattern
//     behind the paper's Cluster-aware Graph Parallelism, §III-C).
//
// Every Plan is pinned bitwise-equal to sequential execution; see
// DESIGN.md "Sequence parallelism as an execution plan" for the argument.
// The interface is sealed (unexported methods): plans live in this package,
// next to the layer internals they schedule.
type Plan interface {
	// Ranks reports the number of simulated devices (1 for single-process
	// plans).
	Ranks() int
	// StepReset returns all plan-owned workspace buffers to the shared
	// pools. Call at optimiser-step boundaries, after gradients are
	// consumed.
	StepReset()
	// AllocStats aggregates workspace counters across the plan's
	// workspaces.
	AllocStats() tensor.WorkspaceStats

	// workspace hands out the plan's serial-section workspace (slot-based
	// for the head-parallel runtime). nil is valid and means heap
	// allocation.
	workspace(slot int) *tensor.Workspace
	// forwardHeads runs the per-head attention section over projected
	// q/k/v (S×Hidden each) and returns the concatenated head outputs
	// (S×Hidden), stashing per-head kernels on m for backwardHeads.
	forwardHeads(m *MHA, q, k, v *tensor.Mat, spec *AttentionSpec) *tensor.Mat
	// backwardHeads propagates dConcat (S×Hidden) through the cached head
	// kernels, accumulates bias-table gradients, and returns dq/dk/dv.
	backwardHeads(m *MHA, dConcat *tensor.Mat) (dq, dk, dv *tensor.Mat)
}

// normPlan maps a nil Plan to the nil-*Runtime sequential fallback so layer
// code can always call through the interface.
func normPlan(p Plan) Plan {
	if p == nil {
		return (*Runtime)(nil)
	}
	return p
}

// AsSeqParallel returns p as a *SeqParallel when that is what it is, else
// nil. The training loop uses this to run the gradient-synchronisation
// collective at optimiser-step boundaries.
func AsSeqParallel(p Plan) *SeqParallel {
	if sp, ok := p.(*SeqParallel); ok {
		return sp
	}
	return nil
}

// SeqParallel executes a model under simulated sequence parallelism: P rank
// goroutines each own a contiguous shard of ⌈S/P⌉ sequence rows (the tail
// shard may be short or empty) and Heads/P attention heads. Row-wise layers
// (projections, norms, FFN, loss) are sequence-decomposable and run once
// over the full sequence in the shared address space — bitwise identical to
// computing each shard on its owning rank. At every attention boundary the
// plan does what a real deployment does: two dist.Comm all-to-alls reshard
// the projected q/k/v from sequence shards to worker-local heads over the
// full sequence, each rank runs its heads' kernels with scratch drawn from
// its own per-rank workspace, and two more all-to-alls reshard the outputs
// back (8 all-to-alls per layer per fwd+bwd step, the Ulysses schedule).
//
// Training under this plan is pinned bitwise-equal to the serial trajectory
// at every P: resharding only moves bytes, per-head kernels see exactly the
// full-sequence inputs the serial path builds, and shard outputs are
// assembled with the same zero-initialise-then-add ordering the serial
// engine uses. SyncGradients performs the gradient all-reduce's exchange
// round in fixed rank order (see its doc) so the simulation's traffic
// accounting matches what the determinism argument requires of a real
// cluster.
type SeqParallel struct {
	// P is the number of simulated ranks.
	P int

	comm   *dist.Comm
	wss    []*tensor.Workspace // one per rank; nil slots when pooling off
	shared *tensor.Workspace   // serial sections: residuals, concat, dq/dk/dv
}

// NewSeqParallel builds a sequence-parallel plan of p ranks. opts follows
// ExecOptions semantics: PoolEnabled draws per-rank kernel scratch from
// pooled workspaces (Workers is ignored — within a rank, that rank's heads
// run sequentially, as they would on one GPU).
func NewSeqParallel(p int, opts ExecOptions) *SeqParallel {
	if p < 1 {
		p = 1
	}
	sp := &SeqParallel{P: p, comm: dist.NewComm(p)}
	sp.wss = make([]*tensor.Workspace, p)
	if opts.PoolEnabled {
		for i := range sp.wss {
			sp.wss[i] = tensor.NewWorkspace()
		}
		sp.shared = tensor.NewWorkspace()
	}
	return sp
}

// Ranks implements Plan.
func (p *SeqParallel) Ranks() int { return p.P }

// Comm exposes the plan's collective communicator (traffic accounting).
func (p *SeqParallel) Comm() *dist.Comm { return p.comm }

// StepReset implements Plan: returns every rank's buffers (and the serial
// section's) to the shared pools. Safe only at step boundaries, once all
// collectives have completed — Run is a full barrier, so no rank can still
// be reading a peer's send buffer.
func (p *SeqParallel) StepReset() {
	for _, ws := range p.wss {
		ws.Reset()
	}
	p.shared.Reset()
}

// AllocStats implements Plan.
func (p *SeqParallel) AllocStats() tensor.WorkspaceStats {
	var st tensor.WorkspaceStats
	for _, ws := range append([]*tensor.Workspace{p.shared}, p.wss...) {
		s := ws.Stats()
		st.Gets += s.Gets
		st.PoolHits += s.PoolHits
		st.Resets += s.Resets
		st.InUse += s.InUse
		st.HeldBytes += s.HeldBytes
	}
	return st
}

func (p *SeqParallel) workspace(int) *tensor.Workspace { return p.shared }

// Shard reports the half-open row range [lo, hi) of a length-s sequence
// owned by rank. Shards are ⌈s/P⌉ rows; when P does not divide s the tail
// shard is short or empty (zero-row shards still participate in every
// collective, which Comm supports).
func (p *SeqParallel) Shard(rank, s int) (lo, hi int) {
	chunk := (s + p.P - 1) / p.P
	lo = rank * chunk
	if lo > s {
		lo = s
	}
	hi = lo + chunk
	if hi > s {
		hi = s
	}
	return lo, hi
}

// checkHeads validates the head distribution once per forward.
func (p *SeqParallel) checkHeads(m *MHA) int {
	if m.Heads%p.P != 0 {
		panic(fmt.Sprintf("model: %d heads not divisible by %d sequence-parallel ranks", m.Heads, p.P))
	}
	return m.Heads / p.P
}

// toHeads reshards a rank's row shard (rows×Hidden-slice) to the full
// sequence restricted to the rank's head columns: one all-to-all moving
// each destination rank's column block, then an in-order row assembly.
// w is the per-rank column width (Hidden/P for q/k/v).
func (p *SeqParallel) toHeads(rank int, local *tensor.Mat, s int, ws *tensor.Workspace) *tensor.Mat {
	w := local.Cols / p.P
	parts := make([]*tensor.Mat, p.P)
	for d := 0; d < p.P; d++ {
		parts[d] = colSlice(ws, local, d*w, w)
	}
	recv := p.comm.AllToAll(rank, parts)
	out := ws.GetUninit(s, w)
	for src := 0; src < p.P; src++ {
		lo, _ := p.Shard(src, s)
		for i := 0; i < recv[src].Rows; i++ {
			copy(out.Row(lo+i), recv[src].Row(i))
		}
	}
	return out
}

// toRows is the inverse reshard: full-sequence local-head columns (S×w)
// back to the rank's row shard across all ranks' column blocks (rows×w·P).
func (p *SeqParallel) toRows(rank int, headsLoc *tensor.Mat, s int, ws *tensor.Workspace) *tensor.Mat {
	lo, hi := p.Shard(rank, s)
	parts := make([]*tensor.Mat, p.P)
	for d := 0; d < p.P; d++ {
		dlo, dhi := p.Shard(d, s)
		parts[d] = headsLoc.SliceRows(dlo, dhi)
	}
	recv := p.comm.AllToAll(rank, parts)
	out := ws.GetUninit(hi-lo, headsLoc.Cols*p.P)
	for src := 0; src < p.P; src++ {
		setColsInto(out, recv[src], src*headsLoc.Cols)
	}
	return out
}

// setColsInto copies src into dst columns [c0, c0+src.Cols).
func setColsInto(dst, src *tensor.Mat, c0 int) {
	for i := 0; i < src.Rows; i++ {
		copy(dst.Row(i)[c0:c0+src.Cols], src.Row(i))
	}
}

// forwardHeads implements Plan: Ulysses-resharded per-head attention. Each
// rank projects nothing (projections are row-wise and already done),
// reshards its q/k/v row shard to full-sequence local heads, runs its heads'
// kernels under its own workspace, and reshards the outputs back to rows.
// Assembly mirrors the serial engine's zero-initialise-then-add ordering so
// the concatenated output is bitwise identical to sequential execution.
func (p *SeqParallel) forwardHeads(m *MHA, q, k, v *tensor.Mat, spec *AttentionSpec) *tensor.Mat {
	s := q.Rows
	hp := p.checkHeads(m)
	concat := p.shared.Get(s, m.Hidden)
	err := dist.Run(p.comm, func(rank int) {
		ws := p.wss[rank]
		lo, hi := p.Shard(rank, s)
		qh := p.toHeads(rank, q.SliceRows(lo, hi), s, ws)
		kh := p.toHeads(rank, k.SliceRows(lo, hi), s, ws)
		vh := p.toHeads(rank, v.SliceRows(lo, hi), s, ws)
		headsOut := ws.Get(s, hp*m.Dh)
		for j := 0; j < hp; j++ {
			h := rank*hp + j
			kr := m.newKernel(h, spec, s, ws)
			m.kernels[h] = kr
			oh := kr.Forward(
				colSlice(ws, qh, j*m.Dh, m.Dh),
				colSlice(ws, kh, j*m.Dh, m.Dh),
				colSlice(ws, vh, j*m.Dh, m.Dh))
			addColSlice(headsOut, oh, j*m.Dh)
		}
		outLoc := p.toRows(rank, headsOut, s, ws)
		tensor.AddInPlace(concat.SliceRows(lo, hi), outLoc)
	})
	if err != nil {
		panic(err)
	}
	return concat
}

// backwardHeads implements Plan: the mirrored backward resharding. Bias
// gradients are accumulated per head; all written table entries are
// ≡ head (mod Heads), so concurrent ranks touch disjoint entries exactly as
// the head-parallel runtime does.
func (p *SeqParallel) backwardHeads(m *MHA, dConcat *tensor.Mat) (dq, dk, dv *tensor.Mat) {
	s := dConcat.Rows
	hp := p.checkHeads(m)
	dq = p.shared.Get(s, m.Hidden)
	dk = p.shared.Get(s, m.Hidden)
	dv = p.shared.Get(s, m.Hidden)
	err := dist.Run(p.comm, func(rank int) {
		ws := p.wss[rank]
		lo, hi := p.Shard(rank, s)
		dch := p.toHeads(rank, dConcat.SliceRows(lo, hi), s, ws)
		dqh := ws.Get(s, hp*m.Dh)
		dkh := ws.Get(s, hp*m.Dh)
		dvh := ws.Get(s, hp*m.Dh)
		for j := 0; j < hp; j++ {
			h := rank*hp + j
			dqj, dkj, dvj := m.kernels[h].Backward(colSlice(ws, dch, j*m.Dh, m.Dh))
			addColSlice(dqh, dqj, j*m.Dh)
			addColSlice(dkh, dkj, j*m.Dh)
			addColSlice(dvh, dvj, j*m.Dh)
			m.AccumBiasGrads(h, m.kernels[h], m.spec)
		}
		tensor.AddInPlace(dq.SliceRows(lo, hi), p.toRows(rank, dqh, s, ws))
		tensor.AddInPlace(dk.SliceRows(lo, hi), p.toRows(rank, dkh, s, ws))
		tensor.AddInPlace(dv.SliceRows(lo, hi), p.toRows(rank, dvh, s, ws))
	})
	if err != nil {
		panic(err)
	}
	return dq, dk, dv
}

// SyncGradients runs the gradient-synchronisation collective that ends
// every sequence-parallel optimiser step. In this shared-address-space
// simulation each rank already holds the fully-reduced gradients — the
// layers accumulate sequence reductions once, in serial order — so the
// collective's job is the exchange round and its barrier semantics: every
// rank all-gathers the flattened gradient vector, moving exactly the bytes
// a P-replica deployment's all-reduce would move. A real deployment must
// additionally sum the rank partials in fixed rank order (dist.Comm's
// AllReduce does) to keep replicas bitwise identical; see DESIGN.md.
func (p *SeqParallel) SyncGradients(params []*nn.Param) {
	if p.P <= 1 {
		return
	}
	n := 0
	for _, pr := range params {
		n += len(pr.Grad.Data)
	}
	flat := p.shared.GetUninit(1, n)
	off := 0
	for _, pr := range params {
		copy(flat.Data[off:], pr.Grad.Data)
		off += len(pr.Grad.Data)
	}
	if err := dist.Run(p.comm, func(rank int) {
		p.comm.AllGather(rank, flat)
	}); err != nil {
		panic(err)
	}
	p.shared.Put(flat)
}
