package model

// Presets mirror the paper's Table IV model configurations. GPHLarge's full
// size (hidden 768, 32 heads, 12 layers) is faithful to the paper; the
// benchmark harness trains a width-scaled variant on CPU and records the
// scale factor in EXPERIMENTS.md.

// GraphormerSlim returns the GPH-Slim configuration: 4 layers, hidden 64,
// 8 heads, degree encodings + SPD bias.
func GraphormerSlim(inDim, outDim int, seed int64) Config {
	return Config{
		Name: "gph-slim", Layers: 4, Hidden: 64, Heads: 8,
		InDim: inDim, OutDim: outDim, Dropout: 0.1,
		UseDegreeEnc: true, UseSPDBias: true, Seed: seed,
	}
}

// GraphormerLarge returns the GPH-Large configuration: 12 layers, hidden
// 768, 32 heads.
func GraphormerLarge(inDim, outDim int, seed int64) Config {
	return Config{
		Name: "gph-large", Layers: 12, Hidden: 768, Heads: 32,
		InDim: inDim, OutDim: outDim, Dropout: 0.1,
		UseDegreeEnc: true, UseSPDBias: true, Seed: seed,
	}
}

// GraphormerLargeScaled returns GPH-Large shrunk by factor f in width and
// depth for CPU execution (f=4 → 3 layers, hidden 192, 8 heads).
func GraphormerLargeScaled(inDim, outDim int, f int, seed int64) Config {
	if f < 1 {
		f = 1
	}
	cfg := GraphormerLarge(inDim, outDim, seed)
	cfg.Name = "gph-large-scaled"
	cfg.Layers = max(2, cfg.Layers/f)
	cfg.Hidden = max(32, cfg.Hidden/f)
	cfg.Heads = max(4, cfg.Heads/f)
	return cfg
}

// GTConfig returns the GT (Dwivedi–Bresson) configuration: 4 layers, hidden
// 128, 8 heads, Laplacian PE + SPD bias.
func GTConfig(inDim, outDim int, seed int64) Config {
	return Config{
		Name: "gt", Layers: 4, Hidden: 128, Heads: 8,
		InDim: inDim, OutDim: outDim, Dropout: 0.1,
		UseLapPE: true, LapDim: 8, UseSPDBias: true, Seed: seed,
	}
}

// NodeFormerLite returns a linear-attention transformer configuration used
// by the Fig. 1 reproduction (no structural bias; kernelized attention is
// selected via AttentionSpec at train time).
func NodeFormerLite(inDim, outDim int, seed int64) Config {
	return Config{
		Name: "nodeformer-lite", Layers: 4, Hidden: 64, Heads: 4,
		InDim: inDim, OutDim: outDim, Dropout: 0.1, Seed: seed,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
