package model

import "fmt"

// CopyWeightsFrom copies every parameter value of src into g. Both models
// must be built from the same configuration (parameters are matched
// positionally, with name and shape verified defensively, mirroring the
// checkpoint contract in internal/nn). Gradients are untouched.
//
// This is the replication primitive of the serving engine: one frozen master
// model fans out into per-worker replicas that share nothing but their
// numbers, so concurrent grad-free forwards need no locking.
func (g *GraphTransformer) CopyWeightsFrom(src *GraphTransformer) error {
	dst := g.Params()
	from := src.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("model: parameter count mismatch: %d vs %d", len(dst), len(from))
	}
	for i, p := range dst {
		q := from[i]
		if p.Name != q.Name {
			return fmt.Errorf("model: param %d name mismatch: %q vs %q", i, p.Name, q.Name)
		}
		if !p.W.SameShape(q.W) {
			return fmt.Errorf("model: param %q shape mismatch: %dx%d vs %dx%d",
				p.Name, p.W.Rows, p.W.Cols, q.W.Rows, q.W.Cols)
		}
		copy(p.W.Data, q.W.Data)
	}
	return nil
}
