package model

import (
	"fmt"

	"torchgt/internal/dist/transport"
	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// DistSeqParallel is the cross-process execution Plan: this process is one
// rank of an R×P hybrid job — R data-parallel replicas, each a P-rank
// sequence-parallel group — communicating over a transport.Transport (TCP
// between real processes, the in-process mesh under tests). Global rank g
// sits in replica g/P at sequence-parallel index g%P.
//
// Layout: row-wise layers (projections, norms, FFN, loss) are
// sequence-decomposable, so every rank runs them replicated over the full
// sequence — bitwise the work its sequence shard plus an all-gather would
// produce, with zero communication. Only the head section partitions: each
// rank runs its own Heads/P attention heads over the full sequence and one
// all-gather per attention boundary reassembles the concatenated outputs
// (and, in backward, dq/dk/dv). This is the Ulysses head decomposition with
// the sequence dimension kept resident; the wire moves exactly the per-head
// outputs a sequence↔head reshard would move on its second hop.
//
// Determinism: the gathered head blocks land in disjoint columns and are
// assembled with the same zero-initialise-then-add ordering every other
// plan uses, per-head kernels see bit-identical full-sequence inputs, and
// gradient synchronisation (bias-table ownership merge, data-parallel mean)
// folds in fixed member order — so training under this plan is pinned
// bitwise-equal to the serial trajectory, and hence to the in-process
// SeqParallel plan, at every P. See DESIGN.md "Cross-process execution".
type DistSeqParallel struct {
	// P is the sequence-parallel degree (ranks per replica); R the replica
	// count. P·R is the transport's world size.
	P, R int

	t     transport.Transport
	sp    *transport.Group // this rank's sequence-parallel group
	dp    *transport.Group // this rank's cross-replica group
	world *transport.Group

	ws     *tensor.Workspace // head-section scratch
	shared *tensor.Workspace // serial sections: residuals, concat, dq/dk/dv

	// biasTables maps every bias-table parameter seen in forward to its
	// head count, so SyncGradients can run the ownership merge.
	biasTables map[*nn.Param]int
}

// NewDistSeqParallel builds the hybrid plan for this process from its
// transport: world = replicas × P, with ranks [replica·P, (replica+1)·P)
// forming each sequence-parallel group. opts follows ExecOptions semantics
// (Workers is ignored: a rank's heads run sequentially, as on one GPU).
func NewDistSeqParallel(t transport.Transport, replicas int, opts ExecOptions) (*DistSeqParallel, error) {
	if replicas < 1 {
		replicas = 1
	}
	world := t.World()
	if world%replicas != 0 {
		return nil, fmt.Errorf("model: world size %d not divisible into %d replicas", world, replicas)
	}
	p := world / replicas
	rank := t.Rank()
	replica := rank / p
	spRanks := make([]int, p)
	for i := range spRanks {
		spRanks[i] = replica*p + i
	}
	dpRanks := make([]int, replicas)
	for i := range dpRanks {
		dpRanks[i] = rank%p + i*p
	}
	sp, err := transport.NewGroup(t, spRanks)
	if err != nil {
		return nil, err
	}
	dp, err := transport.NewGroup(t, dpRanks)
	if err != nil {
		return nil, err
	}
	d := &DistSeqParallel{P: p, R: replicas, t: t, sp: sp, dp: dp, world: transport.WorldGroup(t)}
	if opts.PoolEnabled {
		d.ws = tensor.NewWorkspace()
		d.shared = tensor.NewWorkspace()
	}
	return d, nil
}

// AsDistSeqParallel returns p as a *DistSeqParallel when that is what it is,
// else nil.
func AsDistSeqParallel(p Plan) *DistSeqParallel {
	if d, ok := p.(*DistSeqParallel); ok {
		return d
	}
	return nil
}

// Ranks implements Plan: the sequence-parallel degree this process takes
// part in (matching SeqParallel's meaning of the same number).
func (p *DistSeqParallel) Ranks() int { return p.P }

// Transport exposes the plan's transport (traffic accounting, teardown).
func (p *DistSeqParallel) Transport() transport.Transport { return p.t }

// TransportBytes reports the payload bytes this rank has sent.
func (p *DistSeqParallel) TransportBytes() int64 { return p.t.BytesSent() }

// StepReset implements Plan. Safe only at step boundaries: SyncGradients
// ends with a world barrier, so no peer can still be reading this rank's
// buffers.
func (p *DistSeqParallel) StepReset() {
	p.ws.Reset()
	p.shared.Reset()
}

// AllocStats implements Plan.
func (p *DistSeqParallel) AllocStats() tensor.WorkspaceStats {
	var st tensor.WorkspaceStats
	for _, ws := range []*tensor.Workspace{p.ws, p.shared} {
		s := ws.Stats()
		st.Gets += s.Gets
		st.PoolHits += s.PoolHits
		st.Resets += s.Resets
		st.InUse += s.InUse
		st.HeldBytes += s.HeldBytes
	}
	return st
}

func (p *DistSeqParallel) workspace(int) *tensor.Workspace { return p.shared }

func (p *DistSeqParallel) checkHeads(m *MHA) int {
	if m.Heads%p.P != 0 {
		panic(fmt.Sprintf("model: %d heads not divisible by %d sequence-parallel ranks", m.Heads, p.P))
	}
	return m.Heads / p.P
}

func (p *DistSeqParallel) noteBiasTable(m *MHA) {
	if m.BiasTable == nil {
		return
	}
	if p.biasTables == nil {
		p.biasTables = make(map[*nn.Param]int)
	}
	p.biasTables[m.BiasTable.W] = m.Heads
}

// forwardHeads implements Plan: run this rank's heads over the full
// sequence, all-gather the per-rank head blocks across the
// sequence-parallel group, and assemble the concatenated output with the
// serial engine's zero-initialise-then-add ordering (0+(0+x) ≡ 0+x
// bitwise, since 0+x is never -0).
func (p *DistSeqParallel) forwardHeads(m *MHA, q, k, v *tensor.Mat, spec *AttentionSpec) *tensor.Mat {
	s := q.Rows
	hp := p.checkHeads(m)
	p.noteBiasTable(m)
	me := p.sp.Index()
	ws := p.ws
	headsOut := ws.Get(s, hp*m.Dh)
	for j := 0; j < hp; j++ {
		h := me*hp + j
		kr := m.newKernel(h, spec, s, ws)
		m.kernels[h] = kr
		oh := kr.Forward(
			colSlice(ws, q, h*m.Dh, m.Dh),
			colSlice(ws, k, h*m.Dh, m.Dh),
			colSlice(ws, v, h*m.Dh, m.Dh))
		addColSlice(headsOut, oh, j*m.Dh)
	}
	// Drop kernels of heads this rank does not own: they may be stale from
	// an earlier plan, and backward must only touch local ones.
	for h := range m.kernels {
		if h/hp != me {
			m.kernels[h] = nil
		}
	}
	gathered, err := p.sp.AllGather(headsOut)
	if err != nil {
		panic(err)
	}
	concat := p.shared.Get(s, m.Hidden)
	for i, part := range gathered {
		addColSlice(concat, part, i*hp*m.Dh)
	}
	return concat
}

// backwardHeads implements Plan: the mirrored backward — local heads
// produce their dq/dk/dv column blocks, three all-gathers reassemble the
// full-width gradients, and bias-table gradients accumulate for local heads
// only (the ownership merge in SyncGradients completes them).
func (p *DistSeqParallel) backwardHeads(m *MHA, dConcat *tensor.Mat) (dq, dk, dv *tensor.Mat) {
	s := dConcat.Rows
	hp := p.checkHeads(m)
	me := p.sp.Index()
	ws := p.ws
	dqh := ws.Get(s, hp*m.Dh)
	dkh := ws.Get(s, hp*m.Dh)
	dvh := ws.Get(s, hp*m.Dh)
	for j := 0; j < hp; j++ {
		h := me*hp + j
		dqj, dkj, dvj := m.kernels[h].Backward(colSlice(ws, dConcat, h*m.Dh, m.Dh))
		addColSlice(dqh, dqj, j*m.Dh)
		addColSlice(dkh, dkj, j*m.Dh)
		addColSlice(dvh, dvj, j*m.Dh)
		m.AccumBiasGrads(h, m.kernels[h], m.spec)
	}
	dq = p.assembleCols(dqh, s, m.Hidden, hp*m.Dh)
	dk = p.assembleCols(dkh, s, m.Hidden, hp*m.Dh)
	dv = p.assembleCols(dvh, s, m.Hidden, hp*m.Dh)
	return dq, dk, dv
}

// assembleCols all-gathers one local column block and assembles the
// full-width matrix (zero-initialise, add disjoint blocks).
func (p *DistSeqParallel) assembleCols(local *tensor.Mat, s, width, w int) *tensor.Mat {
	gathered, err := p.sp.AllGather(local)
	if err != nil {
		panic(err)
	}
	out := p.shared.Get(s, width)
	for i, part := range gathered {
		addColSlice(out, part, i*w)
	}
	return out
}

// SyncGradients runs the gradient-synchronisation collectives that end every
// optimiser step:
//
//  1. Bias-table ownership merge within the sequence-parallel group. Every
//     gradient entry (bucket, head) is written by exactly one rank — the
//     head's owner — so each rank copies the owner's value for the entries
//     it does not own. A copy, not a sum: bitwise the serial accumulation,
//     with no zero-addend corner.
//  2. Data-parallel mean across replicas, in fixed member order with a
//     pairwise-tree fold (see transport.Group.AllReduceMean): replicas stay
//     bitwise identical, and identical replicas at power-of-two R
//     round-trip exactly.
//
// A world barrier closes the step so no peer is still reading this rank's
// buffers when the optimiser starts mutating gradients. Row-wise layers
// need no collective at all: their gradients are computed fully replicated.
func (p *DistSeqParallel) SyncGradients(params []*nn.Param) {
	if p.t.World() <= 1 {
		return
	}
	if p.sp.Size() > 1 && len(p.biasTables) > 0 {
		me := p.sp.Index()
		for _, pr := range params {
			heads, ok := p.biasTables[pr]
			if !ok {
				continue
			}
			hp := heads / p.P
			gathered, err := p.sp.AllGather(pr.Grad)
			if err != nil {
				panic(err)
			}
			// Peers read only the entries this rank owns, and this rank
			// writes only entries it does not own — disjoint even over the
			// in-process zero-copy mesh.
			for e := range pr.Grad.Data {
				if owner := (e % heads) / hp; owner != me {
					pr.Grad.Data[e] = gathered[owner].Data[e]
				}
			}
		}
		// Quiesce the merge before anything mutates gradients again: a
		// peer may still be reading this rank's Grad through the gather
		// (zero-copy in process), and the data-parallel mean below writes
		// every entry back.
		if err := p.sp.Barrier(); err != nil {
			panic(err)
		}
	}
	if p.dp.Size() > 1 {
		mats := make([]*tensor.Mat, len(params))
		for i, pr := range params {
			mats[i] = pr.Grad
		}
		if err := p.dp.AllReduceMean(mats); err != nil {
			panic(err)
		}
	}
	if err := p.world.Barrier(); err != nil {
		panic(err)
	}
}
