package model

import "testing"

func TestCopyWeightsFrom(t *testing.T) {
	cfg := GraphormerSlim(6, 3, 7)
	cfg.Layers = 1
	src := NewGraphTransformer(cfg)
	dst := NewGraphTransformer(cfg)
	for _, p := range dst.Params() {
		p.W.Fill(0)
	}
	if err := dst.CopyWeightsFrom(src); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if !sp[i].W.Equal(dp[i].W, 0) {
			t.Fatalf("param %s not copied", sp[i].Name)
		}
	}
	// copies are independent: mutating the source must not leak through
	sp[0].W.Fill(42)
	if dp[0].W.Equal(sp[0].W, 0) {
		t.Fatal("copy aliases the source storage")
	}

	other := cfg
	other.Hidden = 32
	if err := dst.CopyWeightsFrom(NewGraphTransformer(other)); err == nil {
		t.Fatal("shape mismatch must error")
	}
	other = cfg
	other.Name = "renamed"
	if err := dst.CopyWeightsFrom(NewGraphTransformer(other)); err == nil {
		t.Fatal("name mismatch must error")
	}
	other = cfg
	other.UseDegreeEnc = false
	if err := dst.CopyWeightsFrom(NewGraphTransformer(other)); err == nil {
		t.Fatal("parameter-count mismatch must error")
	}
}
