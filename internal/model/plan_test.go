package model

import (
	"testing"

	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// seqparModel builds a model under the given plan with deterministic weights.
func seqparModel(seed int64, heads int, p Plan) (*GraphTransformer, *Inputs, *AttentionSpec) {
	cfg := GraphormerSlim(6, 3, seed)
	cfg.Layers = 2
	cfg.Heads = heads
	cfg.Hidden = 8 * heads
	cfg.Dropout = 0
	m := NewGraphTransformer(cfg)
	if p != nil {
		m.SetPlan(p)
	}
	g := tinyGraph(11, 19) // 19 rows: not divisible by 2 or 4 → uneven shards
	in := tinyInputs(g, 6, 12)
	return m, in, sparseSpec(g)
}

// TestSeqParallelMatchesSerial pins the tentpole invariant: the sequence-
// parallel plan is bitwise identical to serial execution — logits and every
// parameter gradient — at P ∈ {1, 2, 4}, including when P does not divide S
// (uneven and short shards) and across repeated steps (workspace recycling).
func TestSeqParallelMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		serial, in, spec := seqparModel(3, 4, NewRuntime(ExecOptions{Workers: 1}))
		sp := NewSeqParallel(p, ExecOptions{PoolEnabled: true})
		par, _, _ := seqparModel(3, 4, sp)

		for step := 0; step < 3; step++ {
			ls := serial.Forward(in, spec, true)
			lp := par.Forward(in, spec, true)
			if !ls.Equal(lp, 0) {
				t.Fatalf("P=%d step %d: sequence-parallel logits differ", p, step)
			}
			dl := tensor.New(ls.Rows, ls.Cols)
			dl.Fill(0.25)
			serial.Backward(dl)
			par.Backward(dl)
			ps, pp := serial.Params(), par.Params()
			for i := range ps {
				if !ps[i].Grad.Equal(pp[i].Grad, 0) {
					t.Fatalf("P=%d step %d: grad %s differs under sequence parallelism", p, step, ps[i].Name)
				}
			}
			sp.SyncGradients(pp)
			nn.ZeroGrads(ps)
			nn.ZeroGrads(pp)
			serial.Plan().StepReset()
			sp.StepReset()
		}
		if p > 1 && sp.Comm().TotalBytes() == 0 {
			t.Fatalf("P=%d: no communication recorded", p)
		}
		if p > 1 {
			st := sp.AllocStats()
			if st.Gets == 0 || st.PoolHits == 0 {
				t.Fatalf("P=%d: per-rank workspaces not exercised: %+v", p, st)
			}
		}
	}
}

// TestSeqParallelShortSequence covers S < P: some ranks own empty shards but
// still compute their heads over the gathered full sequence.
func TestSeqParallelShortSequence(t *testing.T) {
	serial, _, _ := seqparModel(5, 4, nil)
	sp := NewSeqParallel(4, ExecOptions{PoolEnabled: true})
	par, _, _ := seqparModel(5, 4, sp)

	g := tinyGraph(7, 3) // S=3 < P=4 → rank 3's shard is empty
	in := tinyInputs(g, 6, 9)
	spec := sparseSpec(g)

	ls := serial.Forward(in, spec, true)
	lp := par.Forward(in, spec, true)
	if !ls.Equal(lp, 0) {
		t.Fatal("short-sequence logits differ")
	}
	dl := tensor.New(ls.Rows, ls.Cols)
	dl.Fill(-0.5)
	serial.Backward(dl)
	par.Backward(dl)
	ps, pp := serial.Params(), par.Params()
	for i := range ps {
		if !ps[i].Grad.Equal(pp[i].Grad, 0) {
			t.Fatalf("short-sequence grad %s differs", ps[i].Name)
		}
	}
}

// TestSeqParallelShardBounds checks the ceil-based sharding contract,
// including the empty tail shard.
func TestSeqParallelShardBounds(t *testing.T) {
	cases := []struct {
		p, s  int
		spans [][2]int
	}{
		{p: 2, s: 8, spans: [][2]int{{0, 4}, {4, 8}}},
		{p: 4, s: 10, spans: [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
		{p: 4, s: 9, spans: [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 9}}}, // empty tail
		{p: 4, s: 3, spans: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 3}}},
		{p: 1, s: 5, spans: [][2]int{{0, 5}}},
	}
	for _, tc := range cases {
		sp := NewSeqParallel(tc.p, ExecOptions{})
		prev := 0
		for r := 0; r < tc.p; r++ {
			lo, hi := sp.Shard(r, tc.s)
			if lo != tc.spans[r][0] || hi != tc.spans[r][1] {
				t.Fatalf("P=%d S=%d rank %d: [%d,%d), want %v", tc.p, tc.s, r, lo, hi, tc.spans[r])
			}
			if lo != prev {
				t.Fatalf("P=%d S=%d rank %d: gap at %d", tc.p, tc.s, r, lo)
			}
			prev = hi
		}
		if prev != tc.s {
			t.Fatalf("P=%d S=%d: shards cover %d rows", tc.p, tc.s, prev)
		}
	}
}

// TestSeqParallelRejectsIndivisibleHeads: the head distribution requires
// Heads % P == 0 (each rank owns whole heads).
func TestSeqParallelRejectsIndivisibleHeads(t *testing.T) {
	sp := NewSeqParallel(3, ExecOptions{PoolEnabled: true})
	m, in, spec := seqparModel(2, 4, sp) // 4 heads, 3 ranks
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on heads not divisible by ranks")
		}
	}()
	m.Forward(in, spec, true)
}

// TestSeqParallelSyncGradientsTraffic pins the gradient-sync accounting: one
// all-gather round moves P·(P−1)·|grads| bytes and leaves gradients
// untouched.
func TestSeqParallelSyncGradientsTraffic(t *testing.T) {
	const p = 4
	sp := NewSeqParallel(p, ExecOptions{PoolEnabled: true})
	params := []*nn.Param{nn.NewParam("a", 2, 3), nn.NewParam("b", 1, 5)}
	for i, pr := range params {
		pr.Grad.Fill(float32(i + 1))
	}
	before := []float32{params[0].Grad.Data[0], params[1].Grad.Data[0]}
	sp.SyncGradients(params)
	want := int64(p * (p - 1) * (2*3 + 1*5) * 4)
	if got := sp.Comm().TotalBytes(); got != want {
		t.Fatalf("sync traffic %d, want %d", got, want)
	}
	if params[0].Grad.Data[0] != before[0] || params[1].Grad.Data[0] != before[1] {
		t.Fatal("SyncGradients must not mutate gradients")
	}
	// P=1 is collective-free.
	sp1 := NewSeqParallel(1, ExecOptions{})
	sp1.SyncGradients(params)
	if sp1.Comm().TotalBytes() != 0 {
		t.Fatal("P=1 must not communicate")
	}
}
