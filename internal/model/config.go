// Package model implements the graph transformer models evaluated in the
// paper — Graphormer (slim and large) and GT (Dwivedi–Bresson) — plus the
// GNN baselines of Table I (GCN, a GAT-style graph attention network) and a
// NodeFormer-lite. Models are built on internal/nn layers and
// internal/attention kernels; the attention method used at each training
// step is injected via an AttentionSpec so the trainer can switch between
// dense / flash / sparse / cluster-sparse per the Dual-interleaved schedule.
package model

import (
	"fmt"

	"torchgt/internal/sparse"
	"torchgt/internal/tensor"
)

// AttnMode selects the attention kernel family for a forward/backward pass.
type AttnMode int

const (
	// ModeDense materialises S×S scores (GP-Raw).
	ModeDense AttnMode = iota
	// ModeFlash is tiled streaming attention, FP32 (GP-Flash).
	ModeFlash
	// ModeFlashBF16 is tiled attention with BF16 storage emulation.
	ModeFlashBF16
	// ModeSparse is the topology-induced pattern (GP-Sparse).
	ModeSparse
	// ModeClusterSparse is the Elastic-Computation-Reformation kernel.
	ModeClusterSparse
	// ModeKernelized is NodeFormer-style linear attention.
	ModeKernelized
)

func (m AttnMode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeFlash:
		return "flash"
	case ModeFlashBF16:
		return "flash-bf16"
	case ModeSparse:
		return "sparse"
	case ModeClusterSparse:
		return "cluster-sparse"
	case ModeKernelized:
		return "kernelized"
	}
	return "unknown"
}

// AttentionSpec carries everything a forward pass needs to build its
// attention kernels for one step.
type AttentionSpec struct {
	Mode AttnMode
	// BF16 wraps the kernel in bfloat16 storage emulation (Table VII's
	// TorchGT-BF16). ModeFlashBF16 implies it already.
	BF16 bool
	// Pattern is required for ModeSparse.
	Pattern *sparse.Pattern
	// Reformed is required for ModeClusterSparse.
	Reformed *sparse.Reformed
	// EdgeBuckets gives the SPD bias bucket of each Pattern entry
	// (ModeSparse with bias).
	EdgeBuckets []int32
	// KeepBuckets gives the bucket of each Reformed.Keep entry
	// (ModeClusterSparse with bias).
	KeepBuckets []int32
	// DenseBuckets[i][j] gives the bucket of pair (i, j) for ModeDense with
	// bias (small graphs only — this is O(S²) memory, which is the point).
	DenseBuckets [][]int32
}

// Validate checks the spec is self-consistent for sequence length s.
func (a *AttentionSpec) Validate(s int) error {
	switch a.Mode {
	case ModeSparse:
		if a.Pattern == nil {
			return fmt.Errorf("model: sparse mode requires Pattern")
		}
		if a.Pattern.S != s {
			return fmt.Errorf("model: pattern S=%d != sequence %d", a.Pattern.S, s)
		}
		if a.EdgeBuckets != nil && len(a.EdgeBuckets) != a.Pattern.NNZ() {
			return fmt.Errorf("model: edge buckets length mismatch")
		}
	case ModeClusterSparse:
		if a.Reformed == nil {
			return fmt.Errorf("model: cluster-sparse mode requires Reformed")
		}
		if a.Reformed.S != s {
			return fmt.Errorf("model: reformed S=%d != sequence %d", a.Reformed.S, s)
		}
		if a.KeepBuckets != nil && len(a.KeepBuckets) != a.Reformed.Keep.NNZ() {
			return fmt.Errorf("model: keep buckets length mismatch")
		}
	case ModeDense:
		if a.DenseBuckets != nil && len(a.DenseBuckets) != s {
			return fmt.Errorf("model: dense buckets shape mismatch")
		}
	}
	return nil
}

// Config describes a graph transformer instance.
type Config struct {
	Name      string
	Layers    int
	Hidden    int
	Heads     int
	FFNHidden int // 0 → 4×Hidden
	InDim     int
	OutDim    int
	Dropout   float64

	UseDegreeEnc bool // Graphormer centrality encoding
	UseSPDBias   bool // Graphormer/GT attention bias
	NumBuckets   int  // SPD bias buckets (0 → 8)
	UseLapPE     bool // GT Laplacian positional encoding
	LapDim       int

	GlobalToken bool // graph-level readout token

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.FFNHidden == 0 {
		c.FFNHidden = 4 * c.Hidden
	}
	if c.NumBuckets == 0 {
		c.NumBuckets = 8
	}
	if c.Heads == 0 {
		c.Heads = 1
	}
	return c
}

// colSlice copies columns [c0, c0+w) of src into an R×w matrix drawn from ws
// (heap-allocated when ws is nil).
func colSlice(ws *tensor.Workspace, src *tensor.Mat, c0, w int) *tensor.Mat {
	out := ws.GetUninit(src.Rows, w)
	for i := 0; i < src.Rows; i++ {
		copy(out.Row(i), src.Row(i)[c0:c0+w])
	}
	return out
}

// addColSlice adds src (R×w) into dst columns [c0, c0+w).
func addColSlice(dst *tensor.Mat, src *tensor.Mat, c0 int) {
	for i := 0; i < src.Rows; i++ {
		d := dst.Row(i)[c0 : c0+src.Cols]
		s := src.Row(i)
		for j := range s {
			d[j] += s[j]
		}
	}
}
