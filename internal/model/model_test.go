package model

import (
	"math"
	"math/rand"
	"testing"

	"torchgt/internal/encoding"
	"torchgt/internal/graph"
	"torchgt/internal/nn"
	"torchgt/internal/sparse"
	"torchgt/internal/tensor"
)

func tinyGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return graph.ErdosRenyi(n, 0.3, rng)
}

func tinyInputs(g *graph.Graph, inDim int, seed int64) *Inputs {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(g.N, inDim)
	tensor.RandN(x, rng, 1)
	in, out := encoding.DegreeBuckets(g, 63)
	return &Inputs{X: x, DegInIdx: in, DegOutIdx: out}
}

func sparseSpec(g *graph.Graph) *AttentionSpec {
	p := sparse.FromGraph(g)
	buckets := make([]int32, p.NNZ())
	idx := 0
	for i := 0; i < p.S; i++ {
		for _, j := range p.Row(i) {
			if int32(i) == j {
				buckets[idx] = 0
			} else {
				buckets[idx] = 1
			}
			idx++
		}
	}
	return &AttentionSpec{Mode: ModeSparse, Pattern: p, EdgeBuckets: buckets}
}

func TestGraphTransformerForwardShapes(t *testing.T) {
	g := tinyGraph(1, 12)
	cfg := GraphormerSlim(8, 5, 1)
	cfg.Layers = 2
	m := NewGraphTransformer(cfg)
	in := tinyInputs(g, 8, 2)
	logits := m.Forward(in, sparseSpec(g), false)
	if logits.Rows != 12 || logits.Cols != 5 {
		t.Fatalf("logits shape %v", logits)
	}
}

func TestGraphTransformerAllModesRun(t *testing.T) {
	g := tinyGraph(2, 10)
	cfg := GraphormerSlim(6, 3, 3)
	cfg.Layers = 1
	m := NewGraphTransformer(cfg)
	in := tinyInputs(g, 6, 4)

	p := sparse.FromGraph(g)
	cl, err := sparse.NewClusterLayout(p, []int32{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	r := sparse.Reform(cl, 2, 1.0)
	keepBuckets := make([]int32, r.Keep.NNZ())
	for i := range keepBuckets {
		keepBuckets[i] = 1
	}
	spd := g.AllPairsSPD(6)
	specs := []*AttentionSpec{
		{Mode: ModeDense, DenseBuckets: spd},
		{Mode: ModeFlash},
		{Mode: ModeFlashBF16},
		sparseSpec(g),
		{Mode: ModeClusterSparse, Reformed: r, KeepBuckets: keepBuckets},
		{Mode: ModeKernelized},
	}
	for _, spec := range specs {
		logits := m.Forward(in, spec, true)
		if logits.Rows != 10 || logits.Cols != 3 {
			t.Fatalf("mode %v: shape %v", spec.Mode, logits)
		}
		dl := tensor.New(10, 3)
		dl.Fill(0.1)
		m.Backward(dl) // must not panic
		nn.ZeroGrads(m.Params())
	}
}

func TestGraphTransformerGradCheckSparse(t *testing.T) {
	// finite-difference check of dLoss/dParam on a selection of parameters
	// through the full model (sparse mode with SPD bias).
	g := tinyGraph(3, 8)
	cfg := GraphormerSlim(4, 3, 5)
	cfg.Layers = 1
	cfg.Heads = 2
	cfg.Hidden = 8
	cfg.Dropout = 0 // deterministic
	m := NewGraphTransformer(cfg)
	in := tinyInputs(g, 4, 6)
	spec := sparseSpec(g)
	labels := []int32{0, 1, 2, 0, 1, 2, 0, 1}

	loss := func() float64 {
		logits := m.Forward(in, spec, true)
		l, _ := nn.SoftmaxCrossEntropy(logits, labels, nil)
		return l
	}
	loss()
	logits := m.Forward(in, spec, true)
	_, dl := nn.SoftmaxCrossEntropy(logits, labels, nil)
	nn.ZeroGrads(m.Params())
	m.Backward(dl)

	// spot check several parameters, including bias table and degree enc
	params := m.Params()
	checked := 0
	for _, p := range params {
		for _, i := range []int{0, p.NumElems() / 2} {
			if i >= p.NumElems() {
				continue
			}
			const eps = 1e-2
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := loss()
			p.W.Data[i] = orig - eps
			lm := loss()
			p.W.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			got := float64(p.Grad.Data[i])
			if math.Abs(fd-got) > 3e-2*math.Max(1, math.Abs(fd)) {
				t.Fatalf("%s grad[%d]: fd=%v analytic=%v", p.Name, i, fd, got)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("too few parameters checked: %d", checked)
	}
}

func TestGlobalTokenGraphLevel(t *testing.T) {
	g := tinyGraph(4, 9)
	cfg := GraphormerSlim(4, 2, 7)
	cfg.Layers = 1
	cfg.GlobalToken = true
	m := NewGraphTransformer(cfg)
	in := tinyInputs(g, 4, 8)

	p := sparse.FromGraph(g).WithGlobalToken()
	buckets := make([]int32, p.NNZ())
	for i := range buckets {
		buckets[i] = 1
	}
	spec := &AttentionSpec{Mode: ModeSparse, Pattern: p, EdgeBuckets: buckets}
	logits := m.Forward(in, spec, false)
	if logits.Rows != 1 || logits.Cols != 2 {
		t.Fatalf("graph-level logits shape %v", logits)
	}
	dl := tensor.New(1, 2)
	dl.Fill(1)
	nn.ZeroGrads(m.Params())
	m.Backward(dl)
	// global token must receive gradient
	if m.Global.Grad.MaxAbs() == 0 {
		t.Fatal("global token got no gradient")
	}
}

func TestGraphTransformerDeterministicForward(t *testing.T) {
	g := tinyGraph(5, 10)
	cfg := GTConfig(6, 4, 9)
	cfg.Layers = 2
	mk := func() *tensor.Mat {
		m := NewGraphTransformer(cfg)
		rng := rand.New(rand.NewSource(11))
		in := tinyInputs(g, 6, 10)
		in.LapPE = encoding.LaplacianPE(g, 8, 20, rng)
		return m.Forward(in, sparseSpec(g), false)
	}
	a, b := mk(), mk()
	if !a.Equal(b, 0) {
		t.Fatal("same seed must give identical forward")
	}
}

func TestPresetsMatchTableIV(t *testing.T) {
	slim := GraphormerSlim(16, 4, 1)
	if slim.Layers != 4 || slim.Hidden != 64 || slim.Heads != 8 {
		t.Fatal("GPH-Slim preset wrong")
	}
	large := GraphormerLarge(16, 4, 1)
	if large.Layers != 12 || large.Hidden != 768 || large.Heads != 32 {
		t.Fatal("GPH-Large preset wrong")
	}
	gt := GTConfig(16, 4, 1)
	if gt.Layers != 4 || gt.Hidden != 128 || gt.Heads != 8 || !gt.UseLapPE {
		t.Fatal("GT preset wrong")
	}
	scaled := GraphormerLargeScaled(16, 4, 4, 1)
	if scaled.Hidden != 192 || scaled.Layers != 3 || scaled.Heads != 8 {
		t.Fatalf("scaled preset wrong: %+v", scaled)
	}
}

func TestGCNForwardBackwardLearns(t *testing.T) {
	// tiny planted dataset: GCN should beat random guessing quickly
	d := graph.MakeNodeDataset(graph.NodeDatasetConfig{
		Name: "t", NumNodes: 128, NumBlocks: 4, NumClasses: 4, FeatDim: 8,
		AvgDegIn: 10, AvgDegOut: 1, NoiseStd: 0.5, Seed: 1,
	})
	m := NewGCN(d.G, 8, 16, 4, 0, 2)
	opt := nn.NewAdam(0.01)
	var acc float64
	for ep := 0; ep < 60; ep++ {
		logits := m.Forward(d.X, true)
		_, dl := nn.SoftmaxCrossEntropy(logits, d.Y, d.TrainMask)
		m.Backward(dl)
		opt.Step(m.Params())
		if ep == 59 {
			acc = nn.Accuracy(m.Forward(d.X, false), d.Y, d.TestMask)
		}
	}
	if acc < 0.6 {
		t.Fatalf("GCN failed to learn planted labels: acc=%v", acc)
	}
}

func TestGATForwardBackwardLearns(t *testing.T) {
	d := graph.MakeNodeDataset(graph.NodeDatasetConfig{
		Name: "t", NumNodes: 128, NumBlocks: 4, NumClasses: 4, FeatDim: 8,
		AvgDegIn: 10, AvgDegOut: 1, NoiseStd: 0.5, Seed: 3,
	})
	m := NewGAT(d.G, 8, 16, 4, 4)
	opt := nn.NewAdam(0.01)
	var acc float64
	for ep := 0; ep < 60; ep++ {
		logits := m.Forward(d.X, true)
		_, dl := nn.SoftmaxCrossEntropy(logits, d.Y, d.TrainMask)
		m.Backward(dl)
		opt.Step(m.Params())
		if ep == 59 {
			acc = nn.Accuracy(m.Forward(d.X, false), d.Y, d.TestMask)
		}
	}
	if acc < 0.5 {
		t.Fatalf("GAT failed to learn planted labels: acc=%v", acc)
	}
}

func TestSpecValidation(t *testing.T) {
	spec := &AttentionSpec{Mode: ModeSparse}
	if spec.Validate(5) == nil {
		t.Fatal("sparse without pattern must fail")
	}
	g := tinyGraph(6, 5)
	spec = sparseSpec(g)
	if spec.Validate(7) == nil {
		t.Fatal("S mismatch must fail")
	}
	if spec.Validate(5) != nil {
		t.Fatal("valid spec rejected")
	}
}

func TestPairsAccounting(t *testing.T) {
	g := tinyGraph(7, 10)
	cfg := GraphormerSlim(4, 2, 13)
	cfg.Layers = 2
	m := NewGraphTransformer(cfg)
	in := tinyInputs(g, 4, 14)
	spec := sparseSpec(g)
	m.Forward(in, spec, false)
	wantPerHead := int64(spec.Pattern.NNZ())
	want := wantPerHead * int64(cfg.Heads) * int64(cfg.Layers)
	if m.Pairs() != want {
		t.Fatalf("pairs=%d want %d", m.Pairs(), want)
	}
}

func TestNumParamsPositive(t *testing.T) {
	cfg := GraphormerSlim(8, 3, 15)
	m := NewGraphTransformer(cfg)
	n := nn.NumParams(m)
	if n < 10000 {
		t.Fatalf("gph-slim should have >10k params, got %d", n)
	}
}

func TestGCNGraphLevelLearns(t *testing.T) {
	// tiny regression: y = avg degree of the graph; GCN-pool should fit it
	rng := rand.New(rand.NewSource(50))
	var graphs []*graph.Graph
	var feats []*tensor.Mat
	var targets []float32
	for i := 0; i < 40; i++ {
		g := graph.MoleculeLike(10+rng.Intn(10), rng.Intn(4), rng)
		graphs = append(graphs, g)
		x := tensor.New(g.N, 4)
		tensor.RandN(x, rng, 1)
		feats = append(feats, x)
		targets = append(targets, float32(g.AvgDegree()))
	}
	m := NewGCNGraph(4, 16, 1, 51)
	opt := nn.NewAdam(5e-3)
	var first, last float64
	for ep := 0; ep < 40; ep++ {
		var epLoss float64
		for i, g := range graphs {
			out := m.Forward(g, feats[i])
			l, d := nn.MSE(out, []float32{targets[i]})
			m.Backward(d)
			opt.Step(m.Params())
			epLoss += l
		}
		if ep == 0 {
			first = epLoss
		}
		last = epLoss
	}
	if last >= first*0.5 {
		t.Fatalf("GCNGraph did not learn: %v -> %v", first, last)
	}
}
