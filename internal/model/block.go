package model

import (
	"math/rand"

	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// Block is one pre-LN transformer layer:
//
//	x = x + Dropout(MHA(LN1(x)))
//	x = x + Dropout(FFN(LN2(x)))   with FFN = Linear→GELU→Linear.
type Block struct {
	LN1, LN2 *nn.LayerNorm
	Attn     *MHA
	FC1, FC2 *nn.Linear
	Drop1    *nn.Dropout
	Drop2    *nn.Dropout

	plan Plan
}

// SetPlan attaches the execution plan to the block and its attention.
func (b *Block) SetPlan(p Plan) {
	b.plan = normPlan(p)
	b.Attn.SetPlan(p)
}

// SetRuntime attaches a single-process execution engine (pre-Plan entry
// point).
func (b *Block) SetRuntime(rt *Runtime) { b.SetPlan(rt) }

// NewBlock constructs a transformer block.
func NewBlock(name string, hidden, heads, ffnHidden, numBuckets int, dropout float64, rng *rand.Rand) *Block {
	return &Block{
		LN1:   nn.NewLayerNorm(name+".ln1", hidden),
		LN2:   nn.NewLayerNorm(name+".ln2", hidden),
		Attn:  NewMHA(name+".attn", hidden, heads, numBuckets, rng),
		FC1:   nn.NewLinear(name+".fc1", hidden, ffnHidden, true, rng),
		FC2:   nn.NewLinear(name+".fc2", ffnHidden, hidden, true, rng),
		Drop1: nn.NewDropout(dropout, rng.Int63()),
		Drop2: nn.NewDropout(dropout, rng.Int63()),
	}
}

// Params implements nn.Module.
func (b *Block) Params() []*nn.Param {
	return nn.CollectParams(b.LN1, b.Attn, b.LN2, b.FC1, b.FC2)
}

// Forward runs the block. Residual-sum buffers come from the runtime's
// step workspace; they are consumed within the step (the next layer caches
// what its backward needs), so pooling them is safe.
func (b *Block) Forward(x *tensor.Mat, spec *AttentionSpec, train bool) *tensor.Mat {
	ws := normPlan(b.plan).workspace(0)
	h := b.Attn.Forward(b.LN1.Forward(x), spec)
	h = b.Drop1.Forward(h, train)
	x1 := ws.GetUninit(x.Rows, x.Cols)
	tensor.Add(x1, x, h)

	// FFN with the fused bias+GELU first layer: one pass over the FC1
	// output instead of a bias sweep plus a separate activation sweep.
	f := b.FC2.Forward(b.FC1.ForwardGELU(b.LN2.Forward(x1)))
	f = b.Drop2.Forward(f, train)
	out := ws.GetUninit(x.Rows, x.Cols)
	tensor.Add(out, x1, f)
	return out
}

// Backward propagates dOut through the block and returns dX.
func (b *Block) Backward(dOut *tensor.Mat) *tensor.Mat {
	// FFN branch
	df := b.Drop2.Backward(dOut)
	dx1 := b.LN2.Backward(b.FC1.BackwardGELU(b.FC2.Backward(df)))
	tensor.AddInPlace(dx1, dOut) // residual

	// attention branch
	dh := b.Drop1.Backward(dx1)
	dx := b.LN1.Backward(b.Attn.Backward(dh))
	tensor.AddInPlace(dx, dx1) // residual
	return dx
}
