package model

import (
	"math/rand"

	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// GraphTransformer is the shared architecture behind Graphormer, GT and
// NodeFormer-lite: input projection plus optional structural encodings, a
// stack of transformer blocks with pluggable attention, and a node-level or
// global-token head.
type GraphTransformer struct {
	Cfg Config

	InProj   *nn.Linear
	DegIn    *nn.Embedding // Graphormer z⁻ (in-degree), nil unless enabled
	DegOut   *nn.Embedding // Graphormer z⁺ (out-degree)
	LapProj  *nn.Linear    // GT Laplacian PE projection
	Global   *nn.Param     // 1×Hidden learnable readout token
	Blocks   []*Block
	FinalLN  *nn.LayerNorm
	Head     *nn.Linear
	InDrop   *nn.Dropout
	numToken int // cached sequence length incl. global token

	plan Plan
}

// SetPlan swaps the execution plan — serial or head-parallel (*Runtime), or
// sequence-parallel (*SeqParallel) — for the model and all of its blocks. A
// nil plan reverts to sequential, unpooled execution.
func (g *GraphTransformer) SetPlan(p Plan) {
	g.plan = normPlan(p)
	for _, b := range g.Blocks {
		b.SetPlan(p)
	}
}

// SetRuntime swaps in a single-process execution engine (head parallelism +
// workspace pooling). A nil runtime reverts to sequential, unpooled
// execution. Kept as the pre-Plan entry point; SetPlan generalises it.
func (g *GraphTransformer) SetRuntime(rt *Runtime) { g.SetPlan(rt) }

// Plan reports the model's execution plan.
func (g *GraphTransformer) Plan() Plan { return normPlan(g.plan) }

// Runtime reports the model's single-process execution engine, or nil when
// the model runs under a different plan (e.g. SeqParallel).
func (g *GraphTransformer) Runtime() *Runtime {
	rt, _ := g.plan.(*Runtime)
	return rt
}

// Inputs carries per-step input tensors alongside features.
type Inputs struct {
	X *tensor.Mat // S×InDim node features
	// DegInIdx/DegOutIdx are degree buckets (required iff UseDegreeEnc).
	DegInIdx, DegOutIdx []int32
	// LapPE is the positional encoding matrix (required iff UseLapPE).
	LapPE *tensor.Mat
}

// NewGraphTransformer builds the model from cfg.
func NewGraphTransformer(cfg Config) *GraphTransformer {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gt := &GraphTransformer{Cfg: cfg}
	gt.InProj = nn.NewLinear(cfg.Name+".in", cfg.InDim, cfg.Hidden, true, rng)
	if cfg.UseDegreeEnc {
		gt.DegIn = nn.NewEmbedding(cfg.Name+".zin", 64, cfg.Hidden, rng)
		gt.DegOut = nn.NewEmbedding(cfg.Name+".zout", 64, cfg.Hidden, rng)
	}
	if cfg.UseLapPE {
		gt.LapProj = nn.NewLinear(cfg.Name+".lap", cfg.LapDim, cfg.Hidden, true, rng)
	}
	if cfg.GlobalToken {
		gt.Global = nn.NewParam(cfg.Name+".cls", 1, cfg.Hidden)
		gt.Global.InitNormal(rng, 0.02)
	}
	buckets := 0
	if cfg.UseSPDBias {
		buckets = cfg.NumBuckets
	}
	for l := 0; l < cfg.Layers; l++ {
		gt.Blocks = append(gt.Blocks, NewBlock(
			cfg.Name+".blk", cfg.Hidden, cfg.Heads, cfg.FFNHidden, buckets, cfg.Dropout, rng))
	}
	gt.FinalLN = nn.NewLayerNorm(cfg.Name+".lnf", cfg.Hidden)
	gt.Head = nn.NewLinear(cfg.Name+".head", cfg.Hidden, cfg.OutDim, true, rng)
	gt.InDrop = nn.NewDropout(cfg.Dropout, rng.Int63())
	gt.SetRuntime(DefaultRuntime())
	return gt
}

// Params implements nn.Module.
func (g *GraphTransformer) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, g.InProj.Params()...)
	if g.DegIn != nil {
		ps = append(ps, g.DegIn.Params()...)
		ps = append(ps, g.DegOut.Params()...)
	}
	if g.LapProj != nil {
		ps = append(ps, g.LapProj.Params()...)
	}
	if g.Global != nil {
		ps = append(ps, g.Global)
	}
	for _, b := range g.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, g.FinalLN.Params()...)
	ps = append(ps, g.Head.Params()...)
	return ps
}

// Dropouts lists every dropout layer in deterministic order (input dropout,
// then per block Drop1/Drop2). Training checkpoints serialise each layer's
// RNG stream position in this order, so bitwise resume reproduces the exact
// mask sequence an uninterrupted run would have drawn.
func (g *GraphTransformer) Dropouts() []*nn.Dropout {
	out := []*nn.Dropout{g.InDrop}
	for _, b := range g.Blocks {
		out = append(out, b.Drop1, b.Drop2)
	}
	return out
}

// embed builds the token sequence h⁰: projected features plus degree/PE
// encodings, with the global token (if any) prepended at position 0. The
// AttentionSpec's pattern must already account for the global token.
func (g *GraphTransformer) embed(in *Inputs, train bool) *tensor.Mat {
	h := g.InProj.Forward(in.X)
	if g.DegIn != nil {
		tensor.AddInPlace(h, g.DegIn.Forward(in.DegInIdx))
		tensor.AddInPlace(h, g.DegOut.Forward(in.DegOutIdx))
	}
	if g.LapProj != nil {
		tensor.AddInPlace(h, g.LapProj.Forward(in.LapPE))
	}
	if g.Global != nil {
		seq := tensor.New(h.Rows+1, g.Cfg.Hidden)
		copy(seq.Row(0), g.Global.W.Row(0))
		copy(seq.Data[g.Cfg.Hidden:], h.Data)
		h = seq
	}
	g.numToken = h.Rows
	return g.InDrop.Forward(h, train)
}

// Forward computes logits: node-level → S×OutDim (global-token row dropped);
// graph-level (GlobalToken set) → 1×OutDim from the readout token.
//
// Forward recycles the previous step's workspace buffers: anything the
// caller keeps across steps (logits, dX) lives on the heap, while per-step
// attention scratch returns to the pool here. Forward → Backward pairs
// within one step therefore see stable buffers.
func (g *GraphTransformer) Forward(in *Inputs, spec *AttentionSpec, train bool) *tensor.Mat {
	g.Plan().StepReset()
	h := g.embed(in, train)
	for _, b := range g.Blocks {
		h = b.Forward(h, spec, train)
	}
	h = g.FinalLN.Forward(h)
	if g.Global != nil {
		return g.Head.Forward(h.SliceRows(0, 1))
	}
	return g.Head.Forward(h)
}

// Backward accumulates gradients from dLogits (shape mirroring Forward's
// return) into all parameters.
func (g *GraphTransformer) Backward(dLogits *tensor.Mat) {
	var dh *tensor.Mat
	if g.Global != nil {
		dRow := g.Head.Backward(dLogits) // 1×Hidden
		dh = tensor.New(g.numToken, g.Cfg.Hidden)
		copy(dh.Row(0), dRow.Row(0))
	} else {
		dh = g.Head.Backward(dLogits)
	}
	dh = g.FinalLN.Backward(dh)
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		dh = g.Blocks[i].Backward(dh)
	}
	dh = g.InDrop.Backward(dh)
	if g.Global != nil {
		tensor.Axpy(1, dh.Row(0), g.Global.Grad.Row(0))
		dh = dh.SliceRows(1, g.numToken)
	}
	if g.LapProj != nil {
		g.LapProj.Backward(dh)
	}
	if g.DegIn != nil {
		g.DegIn.Backward(dh)
		g.DegOut.Backward(dh)
	}
	g.InProj.Backward(dh)
}

// Pairs sums attended pairs across blocks for the last forward.
func (g *GraphTransformer) Pairs() int64 {
	var p int64
	for _, b := range g.Blocks {
		p += b.Attn.Pairs()
	}
	return p
}
