package model

import (
	"math/rand"

	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// GraphTransformer is the shared architecture behind Graphormer, GT and
// NodeFormer-lite: input projection plus optional structural encodings, a
// stack of transformer blocks with pluggable attention, and a node-level or
// global-token head.
type GraphTransformer struct {
	Cfg Config

	InProj   *nn.Linear
	DegIn    *nn.Embedding // Graphormer z⁻ (in-degree), nil unless enabled
	DegOut   *nn.Embedding // Graphormer z⁺ (out-degree)
	LapProj  *nn.Linear    // GT Laplacian PE projection
	Global   *nn.Param     // 1×Hidden learnable readout token
	Blocks   []*Block
	FinalLN  *nn.LayerNorm
	Head     *nn.Linear
	InDrop   *nn.Dropout
	numToken int // cached sequence length incl. global token(s)

	segRows []int32 // packed feature-row bounds of the last forward (nil when unpacked)
	segSeq  []int32 // matching sequence-position bounds (segRows[s]+s)
	segHead []int32 // readout-row bounds [0,1,…,B] for the Head reduction

	plan Plan
}

// SetPlan swaps the execution plan — serial or head-parallel (*Runtime), or
// sequence-parallel (*SeqParallel) — for the model and all of its blocks. A
// nil plan reverts to sequential, unpooled execution.
func (g *GraphTransformer) SetPlan(p Plan) {
	g.plan = normPlan(p)
	for _, b := range g.Blocks {
		b.SetPlan(p)
	}
}

// SetRuntime swaps in a single-process execution engine (head parallelism +
// workspace pooling). A nil runtime reverts to sequential, unpooled
// execution. Kept as the pre-Plan entry point; SetPlan generalises it.
func (g *GraphTransformer) SetRuntime(rt *Runtime) { g.SetPlan(rt) }

// Plan reports the model's execution plan.
func (g *GraphTransformer) Plan() Plan { return normPlan(g.plan) }

// Runtime reports the model's single-process execution engine, or nil when
// the model runs under a different plan (e.g. SeqParallel).
func (g *GraphTransformer) Runtime() *Runtime {
	rt, _ := g.plan.(*Runtime)
	return rt
}

// Inputs carries per-step input tensors alongside features.
type Inputs struct {
	X *tensor.Mat // S×InDim node features
	// DegInIdx/DegOutIdx are degree buckets (required iff UseDegreeEnc).
	DegInIdx, DegOutIdx []int32
	// LapPE is the positional encoding matrix (required iff UseLapPE).
	LapPE *tensor.Mat
	// SegRows, when non-nil, marks X as a packed batch of B segments:
	// ascending feature-row bounds of length B+1 covering [0, X.Rows].
	// Requires GlobalToken — the model prepends one readout token per
	// segment (at sequence position SegRows[s]+s), the AttentionSpec's
	// pattern must be the matching block-diagonal mask over those
	// per-segment sequences, Forward returns B×OutDim (one readout row per
	// segment), and every row reduction is segmented so gradients match a
	// separate per-segment run bit for bit.
	SegRows []int32
}

// NewGraphTransformer builds the model from cfg.
func NewGraphTransformer(cfg Config) *GraphTransformer {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	gt := &GraphTransformer{Cfg: cfg}
	gt.InProj = nn.NewLinear(cfg.Name+".in", cfg.InDim, cfg.Hidden, true, rng)
	if cfg.UseDegreeEnc {
		gt.DegIn = nn.NewEmbedding(cfg.Name+".zin", 64, cfg.Hidden, rng)
		gt.DegOut = nn.NewEmbedding(cfg.Name+".zout", 64, cfg.Hidden, rng)
	}
	if cfg.UseLapPE {
		gt.LapProj = nn.NewLinear(cfg.Name+".lap", cfg.LapDim, cfg.Hidden, true, rng)
	}
	if cfg.GlobalToken {
		gt.Global = nn.NewParam(cfg.Name+".cls", 1, cfg.Hidden)
		gt.Global.InitNormal(rng, 0.02)
	}
	buckets := 0
	if cfg.UseSPDBias {
		buckets = cfg.NumBuckets
	}
	for l := 0; l < cfg.Layers; l++ {
		gt.Blocks = append(gt.Blocks, NewBlock(
			cfg.Name+".blk", cfg.Hidden, cfg.Heads, cfg.FFNHidden, buckets, cfg.Dropout, rng))
	}
	gt.FinalLN = nn.NewLayerNorm(cfg.Name+".lnf", cfg.Hidden)
	gt.Head = nn.NewLinear(cfg.Name+".head", cfg.Hidden, cfg.OutDim, true, rng)
	gt.InDrop = nn.NewDropout(cfg.Dropout, rng.Int63())
	gt.SetRuntime(DefaultRuntime())
	return gt
}

// Params implements nn.Module.
func (g *GraphTransformer) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, g.InProj.Params()...)
	if g.DegIn != nil {
		ps = append(ps, g.DegIn.Params()...)
		ps = append(ps, g.DegOut.Params()...)
	}
	if g.LapProj != nil {
		ps = append(ps, g.LapProj.Params()...)
	}
	if g.Global != nil {
		ps = append(ps, g.Global)
	}
	for _, b := range g.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, g.FinalLN.Params()...)
	ps = append(ps, g.Head.Params()...)
	return ps
}

// Dropouts lists every dropout layer in deterministic order (input dropout,
// then per block Drop1/Drop2). Training checkpoints serialise each layer's
// RNG stream position in this order, so bitwise resume reproduces the exact
// mask sequence an uninterrupted run would have drawn.
func (g *GraphTransformer) Dropouts() []*nn.Dropout {
	out := []*nn.Dropout{g.InDrop}
	for _, b := range g.Blocks {
		out = append(out, b.Drop1, b.Drop2)
	}
	return out
}

// applySegments installs (or, with nil, clears) the packed-batch row bounds
// on every Linear whose weight-gradient reduction spans rows from more than
// one segment: feature-row bounds on the input/PE projections, sequence
// bounds on each block's projections and FFN, and per-readout-row bounds on
// the head. LayerNorms, embeddings, dropout and the bias/ColSum reductions
// are already row-local (or row-ascending) and need no segmentation — see
// DESIGN.md "Locality: reordering and packing".
func (g *GraphTransformer) applySegments(segRows []int32) {
	g.segRows, g.segSeq, g.segHead = nil, g.segSeq[:0], g.segHead[:0]
	var feat, seq, head []int32
	if segRows != nil {
		if g.Global == nil {
			panic("model: Inputs.SegRows requires GlobalToken")
		}
		g.segRows = segRows
		for s, r := range segRows {
			g.segSeq = append(g.segSeq, r+int32(s))
		}
		for s := 0; s < len(segRows); s++ {
			g.segHead = append(g.segHead, int32(s))
		}
		feat, seq, head = segRows, g.segSeq, g.segHead
	}
	g.InProj.SetSegments(feat)
	if g.LapProj != nil {
		g.LapProj.SetSegments(feat)
	}
	for _, b := range g.Blocks {
		b.Attn.WQ.SetSegments(seq)
		b.Attn.WK.SetSegments(seq)
		b.Attn.WV.SetSegments(seq)
		b.Attn.WO.SetSegments(seq)
		b.FC1.SetSegments(seq)
		b.FC2.SetSegments(seq)
	}
	g.Head.SetSegments(head)
}

// embed builds the token sequence h⁰: projected features plus degree/PE
// encodings, with the global token (if any) prepended at position 0 — or,
// for a packed batch, one global-token row per segment at its block start.
// The AttentionSpec's pattern must already account for the global token(s).
func (g *GraphTransformer) embed(in *Inputs, train bool) *tensor.Mat {
	h := g.InProj.Forward(in.X)
	if g.DegIn != nil {
		tensor.AddInPlace(h, g.DegIn.Forward(in.DegInIdx))
		tensor.AddInPlace(h, g.DegOut.Forward(in.DegOutIdx))
	}
	if g.LapProj != nil {
		tensor.AddInPlace(h, g.LapProj.Forward(in.LapPE))
	}
	switch {
	case g.segRows != nil:
		// One readout token per segment. Interleaving global row then node
		// rows per segment reproduces, element for element, the order a
		// separate per-segment embed would feed the input dropout, keeping
		// the RNG stream bitwise identical to the unpacked loop.
		b := len(g.segRows) - 1
		seq := tensor.New(h.Rows+b, g.Cfg.Hidden)
		for s := 0; s < b; s++ {
			lo, hi := int(g.segRows[s]), int(g.segRows[s+1])
			copy(seq.Row(lo+s), g.Global.W.Row(0))
			copy(seq.Data[(lo+s+1)*g.Cfg.Hidden:], h.Data[lo*g.Cfg.Hidden:hi*g.Cfg.Hidden])
		}
		h = seq
	case g.Global != nil:
		seq := tensor.New(h.Rows+1, g.Cfg.Hidden)
		copy(seq.Row(0), g.Global.W.Row(0))
		copy(seq.Data[g.Cfg.Hidden:], h.Data)
		h = seq
	}
	g.numToken = h.Rows
	return g.InDrop.Forward(h, train)
}

// Forward computes logits: node-level → S×OutDim (global-token row dropped);
// graph-level (GlobalToken set) → 1×OutDim from the readout token.
//
// Forward recycles the previous step's workspace buffers: anything the
// caller keeps across steps (logits, dX) lives on the heap, while per-step
// attention scratch returns to the pool here. Forward → Backward pairs
// within one step therefore see stable buffers.
func (g *GraphTransformer) Forward(in *Inputs, spec *AttentionSpec, train bool) *tensor.Mat {
	g.Plan().StepReset()
	g.applySegments(in.SegRows)
	h := g.embed(in, train)
	for _, b := range g.Blocks {
		h = b.Forward(h, spec, train)
	}
	h = g.FinalLN.Forward(h)
	if g.segRows != nil {
		// Gather the per-segment readout rows into a B×Hidden matrix; the
		// head then maps each to logits independently (its reduction is
		// segmented per row, matching B separate 1-row head calls).
		b := len(g.segRows) - 1
		ro := tensor.New(b, g.Cfg.Hidden)
		for s := 0; s < b; s++ {
			copy(ro.Row(s), h.Row(int(g.segSeq[s])))
		}
		return g.Head.Forward(ro)
	}
	if g.Global != nil {
		return g.Head.Forward(h.SliceRows(0, 1))
	}
	return g.Head.Forward(h)
}

// Backward accumulates gradients from dLogits (shape mirroring Forward's
// return) into all parameters.
func (g *GraphTransformer) Backward(dLogits *tensor.Mat) {
	var dh *tensor.Mat
	switch {
	case g.segRows != nil:
		dRo := g.Head.Backward(dLogits) // B×Hidden
		dh = tensor.New(g.numToken, g.Cfg.Hidden)
		for s := 0; s+1 < len(g.segSeq); s++ {
			copy(dh.Row(int(g.segSeq[s])), dRo.Row(s))
		}
	case g.Global != nil:
		dRow := g.Head.Backward(dLogits) // 1×Hidden
		dh = tensor.New(g.numToken, g.Cfg.Hidden)
		copy(dh.Row(0), dRow.Row(0))
	default:
		dh = g.Head.Backward(dLogits)
	}
	dh = g.FinalLN.Backward(dh)
	for i := len(g.Blocks) - 1; i >= 0; i-- {
		dh = g.Blocks[i].Backward(dh)
	}
	dh = g.InDrop.Backward(dh)
	switch {
	case g.segRows != nil:
		// Per-segment readout-token gradient and global-row stripping, in
		// ascending segment order — the order the unpacked loop accumulates.
		b := len(g.segRows) - 1
		dFeat := tensor.New(int(g.segRows[b]), g.Cfg.Hidden)
		for s := 0; s < b; s++ {
			lo, hi := int(g.segRows[s]), int(g.segRows[s+1])
			tensor.Axpy(1, dh.Row(lo+s), g.Global.Grad.Row(0))
			copy(dFeat.Data[lo*g.Cfg.Hidden:hi*g.Cfg.Hidden], dh.Data[(lo+s+1)*g.Cfg.Hidden:])
		}
		dh = dFeat
	case g.Global != nil:
		tensor.Axpy(1, dh.Row(0), g.Global.Grad.Row(0))
		dh = dh.SliceRows(1, g.numToken)
	}
	if g.LapProj != nil {
		g.LapProj.Backward(dh)
	}
	if g.DegIn != nil {
		g.DegIn.Backward(dh)
		g.DegOut.Backward(dh)
	}
	g.InProj.Backward(dh)
}

// Pairs sums attended pairs across blocks for the last forward.
func (g *GraphTransformer) Pairs() int64 {
	var p int64
	for _, b := range g.Blocks {
		p += b.Attn.Pairs()
	}
	return p
}
