package model

import (
	"math/rand"

	"torchgt/internal/attention"
	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// MHA is multi-head attention with pluggable kernels and optional learnable
// SPD bias tables (one scalar per bucket per head, shared across layers in
// Graphormer; we keep one table per layer for simplicity and note the
// difference in DESIGN.md).
//
// Execution is driven by the attached Runtime: heads fan out across worker
// slots, each head drawing its kernel scratch from the slot's workspace.
// Heads are fully independent — they read shared Q/K/V and write disjoint
// column ranges of the shared output (and disjoint bias-table gradient
// entries, since every index is ≡ head (mod Heads)) — so the fan-out is
// race-free and bitwise identical to the sequential order.
type MHA struct {
	Hidden, Heads, Dh int
	WQ, WK, WV, WO    *nn.Linear
	BiasTable         *nn.Embedding // NumBuckets×Heads, nil when bias disabled

	rt *Runtime

	// per-forward state
	kernels []attention.Kernel
	spec    *AttentionSpec
}

// NewMHA builds the projections (and bias table when numBuckets > 0).
func NewMHA(name string, hidden, heads, numBuckets int, rng *rand.Rand) *MHA {
	m := &MHA{
		Hidden: hidden, Heads: heads, Dh: hidden / heads,
		WQ: nn.NewLinear(name+".wq", hidden, hidden, true, rng),
		WK: nn.NewLinear(name+".wk", hidden, hidden, true, rng),
		WV: nn.NewLinear(name+".wv", hidden, hidden, true, rng),
		WO: nn.NewLinear(name+".wo", hidden, hidden, true, rng),
	}
	if numBuckets > 0 {
		m.BiasTable = nn.NewEmbedding(name+".bias", numBuckets, heads, rng)
	}
	return m
}

// SetRuntime attaches the execution engine (nil reverts to sequential,
// unpooled execution).
func (m *MHA) SetRuntime(rt *Runtime) { m.rt = rt }

// Params implements nn.Module.
func (m *MHA) Params() []*nn.Param {
	ps := nn.CollectParams(m.WQ, m.WK, m.WV, m.WO)
	if m.BiasTable != nil {
		ps = append(ps, m.BiasTable.Params()...)
	}
	return ps
}

// KernelFor instantiates the kernel for one head according to the spec,
// wiring head-specific bias values in. Exported for the distributed runtime,
// which creates kernels per worker-local head.
func (m *MHA) KernelFor(head int, spec *AttentionSpec, s int) attention.Kernel {
	return m.newKernel(head, spec, s, nil)
}

// newKernel instantiates the kernel for one head according to the spec,
// drawing bias scratch from ws.
func (m *MHA) newKernel(head int, spec *AttentionSpec, s int, ws *tensor.Workspace) attention.Kernel {
	k := m.newKernelInner(head, spec, s, ws)
	if spec.BF16 && spec.Mode != ModeFlashBF16 {
		k = &attention.BF16Wrap{Inner: k}
	}
	return attention.WithWorkspace(k, ws)
}

func (m *MHA) newKernelInner(head int, spec *AttentionSpec, s int, ws *tensor.Workspace) attention.Kernel {
	switch spec.Mode {
	case ModeDense:
		d := attention.NewDense()
		if m.BiasTable != nil && spec.DenseBuckets != nil {
			bias := ws.GetUninit(s, s)
			for i := 0; i < s; i++ {
				row := bias.Row(i)
				for j := 0; j < s; j++ {
					row[j] = m.BiasTable.W.W.At(int(spec.DenseBuckets[i][j]), head)
				}
			}
			d.SetBias(bias)
		}
		return d
	case ModeFlash:
		return attention.NewFlash(false)
	case ModeFlashBF16:
		return attention.NewFlash(true)
	case ModeSparse:
		sp := attention.NewSparse(spec.Pattern)
		if m.BiasTable != nil && spec.EdgeBuckets != nil {
			bias := ws.GetVec(len(spec.EdgeBuckets))
			for e, b := range spec.EdgeBuckets {
				bias[e] = m.BiasTable.W.W.At(int(b), head)
			}
			sp.SetEdgeBias(bias)
		}
		return sp
	case ModeClusterSparse:
		cs := attention.NewClusterSparse(spec.Reformed)
		if m.BiasTable != nil {
			if spec.KeepBuckets != nil {
				bias := ws.GetVec(len(spec.KeepBuckets))
				for e, b := range spec.KeepBuckets {
					bias[e] = m.BiasTable.W.W.At(int(b), head)
				}
				cs.SetEdgeBias(bias)
			}
			// all compacted entries represent direct edges → bucket 1
			if m.BiasTable.Num > 1 {
				cs.SetBlockBias(m.BiasTable.W.W.At(1, head))
			}
		}
		return cs
	case ModeKernelized:
		return attention.NewKernelized()
	}
	panic("model: unknown attention mode")
}

// Forward runs multi-head attention over x (S×Hidden) using spec's kernels,
// fanning heads out across the runtime's workers.
func (m *MHA) Forward(x *tensor.Mat, spec *AttentionSpec) *tensor.Mat {
	if err := spec.Validate(x.Rows); err != nil {
		panic(err)
	}
	m.spec = spec
	s := x.Rows
	q := m.WQ.Forward(x)
	k := m.WK.Forward(x)
	v := m.WV.Forward(x)
	if len(m.kernels) != m.Heads {
		m.kernels = make([]attention.Kernel, m.Heads)
	}
	concat := m.rt.workspace(0).Get(s, m.Hidden)
	m.rt.forEachHead(m.Heads, func(h int, ws *tensor.Workspace) {
		qh := colSlice(ws, q, h*m.Dh, m.Dh)
		kh := colSlice(ws, k, h*m.Dh, m.Dh)
		vh := colSlice(ws, v, h*m.Dh, m.Dh)
		kr := m.newKernel(h, spec, s, ws)
		m.kernels[h] = kr
		oh := kr.Forward(qh, kh, vh)
		addColSlice(concat, oh, h*m.Dh)
	})
	return m.WO.Forward(concat)
}

// Backward propagates through WO, each head's kernel and the projections
// (heads again fanned out over workers), accumulating bias-table gradients,
// and returns dX.
func (m *MHA) Backward(dout *tensor.Mat) *tensor.Mat {
	dConcat := m.WO.Backward(dout)
	s := dConcat.Rows
	ws0 := m.rt.workspace(0)
	dq := ws0.Get(s, m.Hidden)
	dk := ws0.Get(s, m.Hidden)
	dv := ws0.Get(s, m.Hidden)
	m.rt.forEachHead(m.Heads, func(h int, ws *tensor.Workspace) {
		dOh := colSlice(ws, dConcat, h*m.Dh, m.Dh)
		dqh, dkh, dvh := m.kernels[h].Backward(dOh)
		addColSlice(dq, dqh, h*m.Dh)
		addColSlice(dk, dkh, h*m.Dh)
		addColSlice(dv, dvh, h*m.Dh)
		// Safe under head parallelism: every touched gradient index is
		// ≡ h (mod Heads), so heads write disjoint entries.
		m.AccumBiasGrads(h, m.kernels[h], m.spec)
	})
	dx := m.WQ.Backward(dq)
	tensor.AddInPlace(dx, m.WK.Backward(dk))
	tensor.AddInPlace(dx, m.WV.Backward(dv))
	return dx
}

// AccumBiasGrads scatters one head-kernel's bias gradients into the bias
// table (exported for the distributed runtime). All indices written are
// ≡ head (mod Heads), keeping concurrent per-head calls race-free.
func (m *MHA) AccumBiasGrads(head int, kernel attention.Kernel, spec *AttentionSpec) {
	if m.BiasTable == nil || kernel == nil {
		return
	}
	grad := m.BiasTable.W.Grad
	if w, ok := kernel.(*attention.BF16Wrap); ok {
		kernel = w.Inner
	}
	switch kr := kernel.(type) {
	case *attention.Dense:
		bg := kr.BiasGrad()
		if bg == nil || spec.DenseBuckets == nil {
			return
		}
		for i := 0; i < bg.Rows; i++ {
			row := bg.Row(i)
			for j, g := range row {
				grad.Data[int(spec.DenseBuckets[i][j])*m.Heads+head] += g
			}
		}
	case *attention.Sparse:
		bg := kr.EdgeBiasGrad()
		if bg == nil {
			return
		}
		for e, g := range bg {
			grad.Data[int(spec.EdgeBuckets[e])*m.Heads+head] += g
		}
	case *attention.ClusterSparse:
		if bg := kr.EdgeBiasGrad(); bg != nil {
			for e, g := range bg {
				grad.Data[int(spec.KeepBuckets[e])*m.Heads+head] += g
			}
		}
		if m.BiasTable.Num > 1 {
			grad.Data[1*m.Heads+head] += kr.BlockBiasGrad()
		}
	}
}

// Pairs sums attended pairs over heads of the last forward (compute units).
func (m *MHA) Pairs() int64 {
	var p int64
	for _, k := range m.kernels {
		if k != nil {
			p += k.Pairs()
		}
	}
	return p
}
