package model

import (
	"math/rand"

	"torchgt/internal/attention"
	"torchgt/internal/nn"
	"torchgt/internal/tensor"
)

// MHA is multi-head attention with pluggable kernels and optional learnable
// SPD bias tables (one scalar per bucket per head, shared across layers in
// Graphormer; we keep one table per layer for simplicity and note the
// difference in DESIGN.md).
//
// The per-head section is dispatched through the attached execution Plan:
// under the head-parallel Runtime heads fan out across worker slots, each
// drawing kernel scratch from its slot's workspace; under the SeqParallel
// plan P rank goroutines reshard sequence↔heads through channel all-to-alls
// and run their local heads under per-rank workspaces. Heads are fully
// independent — they read shared Q/K/V and write disjoint column ranges of
// the shared output (and disjoint bias-table gradient entries, since every
// index is ≡ head (mod Heads)) — so every plan is race-free and bitwise
// identical to the sequential order.
type MHA struct {
	Hidden, Heads, Dh int
	WQ, WK, WV, WO    *nn.Linear
	BiasTable         *nn.Embedding // NumBuckets×Heads, nil when bias disabled

	plan Plan

	// per-forward state
	kernels []attention.Kernel
	spec    *AttentionSpec
}

// NewMHA builds the projections (and bias table when numBuckets > 0).
func NewMHA(name string, hidden, heads, numBuckets int, rng *rand.Rand) *MHA {
	m := &MHA{
		Hidden: hidden, Heads: heads, Dh: hidden / heads,
		WQ: nn.NewLinear(name+".wq", hidden, hidden, true, rng),
		WK: nn.NewLinear(name+".wk", hidden, hidden, true, rng),
		WV: nn.NewLinear(name+".wv", hidden, hidden, true, rng),
		WO: nn.NewLinear(name+".wo", hidden, hidden, true, rng),
	}
	if numBuckets > 0 {
		m.BiasTable = nn.NewEmbedding(name+".bias", numBuckets, heads, rng)
	}
	return m
}

// SetPlan attaches the execution plan (nil reverts to sequential, unpooled
// execution).
func (m *MHA) SetPlan(p Plan) { m.plan = normPlan(p) }

// SetRuntime attaches a single-process execution engine (nil reverts to
// sequential, unpooled execution). Kept as the pre-Plan entry point.
func (m *MHA) SetRuntime(rt *Runtime) { m.SetPlan(rt) }

// Params implements nn.Module.
func (m *MHA) Params() []*nn.Param {
	ps := nn.CollectParams(m.WQ, m.WK, m.WV, m.WO)
	if m.BiasTable != nil {
		ps = append(ps, m.BiasTable.Params()...)
	}
	return ps
}

// KernelFor instantiates the kernel for one head according to the spec,
// wiring head-specific bias values in. Exported for the distributed runtime,
// which creates kernels per worker-local head.
func (m *MHA) KernelFor(head int, spec *AttentionSpec, s int) attention.Kernel {
	return m.newKernel(head, spec, s, nil)
}

// newKernel instantiates the kernel for one head according to the spec,
// drawing bias scratch from ws.
func (m *MHA) newKernel(head int, spec *AttentionSpec, s int, ws *tensor.Workspace) attention.Kernel {
	k := m.newKernelInner(head, spec, s, ws)
	if spec.BF16 && spec.Mode != ModeFlashBF16 {
		k = &attention.BF16Wrap{Inner: k}
	}
	return attention.WithWorkspace(k, ws)
}

func (m *MHA) newKernelInner(head int, spec *AttentionSpec, s int, ws *tensor.Workspace) attention.Kernel {
	switch spec.Mode {
	case ModeDense:
		d := attention.NewDense()
		if m.BiasTable != nil && spec.DenseBuckets != nil {
			bias := ws.GetUninit(s, s)
			for i := 0; i < s; i++ {
				row := bias.Row(i)
				for j := 0; j < s; j++ {
					row[j] = m.BiasTable.W.W.At(int(spec.DenseBuckets[i][j]), head)
				}
			}
			d.SetBias(bias)
		}
		return d
	case ModeFlash:
		return attention.NewFlash(false)
	case ModeFlashBF16:
		return attention.NewFlash(true)
	case ModeSparse:
		sp := attention.NewSparse(spec.Pattern)
		if m.BiasTable != nil && spec.EdgeBuckets != nil {
			bias := ws.GetVec(len(spec.EdgeBuckets))
			for e, b := range spec.EdgeBuckets {
				bias[e] = m.BiasTable.W.W.At(int(b), head)
			}
			sp.SetEdgeBias(bias)
		}
		return sp
	case ModeClusterSparse:
		cs := attention.NewClusterSparse(spec.Reformed)
		if m.BiasTable != nil {
			if spec.KeepBuckets != nil {
				bias := ws.GetVec(len(spec.KeepBuckets))
				for e, b := range spec.KeepBuckets {
					bias[e] = m.BiasTable.W.W.At(int(b), head)
				}
				cs.SetEdgeBias(bias)
			}
			// all compacted entries represent direct edges → bucket 1
			if m.BiasTable.Num > 1 {
				cs.SetBlockBias(m.BiasTable.W.W.At(1, head))
			}
		}
		return cs
	case ModeKernelized:
		return attention.NewKernelized()
	}
	panic("model: unknown attention mode")
}

// Forward runs multi-head attention over x (S×Hidden) using spec's kernels.
// The projections are row-wise and run over the full sequence; the per-head
// section is scheduled by the attached Plan.
func (m *MHA) Forward(x *tensor.Mat, spec *AttentionSpec) *tensor.Mat {
	if err := spec.Validate(x.Rows); err != nil {
		panic(err)
	}
	m.spec = spec
	q := m.WQ.Forward(x)
	k := m.WK.Forward(x)
	v := m.WV.Forward(x)
	if len(m.kernels) != m.Heads {
		m.kernels = make([]attention.Kernel, m.Heads)
	}
	concat := normPlan(m.plan).forwardHeads(m, q, k, v, spec)
	return m.WO.Forward(concat)
}

// Backward propagates through WO, each head's kernel (scheduled by the
// Plan, which also accumulates bias-table gradients) and the projections,
// and returns dX.
func (m *MHA) Backward(dout *tensor.Mat) *tensor.Mat {
	dConcat := m.WO.Backward(dout)
	dq, dk, dv := normPlan(m.plan).backwardHeads(m, dConcat)
	dx := m.WQ.Backward(dq)
	tensor.AddInPlace(dx, m.WK.Backward(dk))
	tensor.AddInPlace(dx, m.WV.Backward(dv))
	return dx
}

// AccumBiasGrads scatters one head-kernel's bias gradients into the bias
// table (exported for the distributed runtime). All indices written are
// ≡ head (mod Heads), keeping concurrent per-head calls race-free.
func (m *MHA) AccumBiasGrads(head int, kernel attention.Kernel, spec *AttentionSpec) {
	if m.BiasTable == nil || kernel == nil {
		return
	}
	grad := m.BiasTable.W.Grad
	if w, ok := kernel.(*attention.BF16Wrap); ok {
		kernel = w.Inner
	}
	switch kr := kernel.(type) {
	case *attention.Dense:
		bg := kr.BiasGrad()
		if bg == nil || spec.DenseBuckets == nil {
			return
		}
		for i := 0; i < bg.Rows; i++ {
			row := bg.Row(i)
			for j, g := range row {
				grad.Data[int(spec.DenseBuckets[i][j])*m.Heads+head] += g
			}
		}
	case *attention.Sparse:
		bg := kr.EdgeBiasGrad()
		if bg == nil {
			return
		}
		for e, g := range bg {
			grad.Data[int(spec.EdgeBuckets[e])*m.Heads+head] += g
		}
	case *attention.ClusterSparse:
		if bg := kr.EdgeBiasGrad(); bg != nil {
			for e, g := range bg {
				grad.Data[int(spec.KeepBuckets[e])*m.Heads+head] += g
			}
		}
		if m.BiasTable.Num > 1 {
			grad.Data[1*m.Heads+head] += kr.BlockBiasGrad()
		}
	}
}

// Pairs sums attended pairs over heads of the last forward (compute units).
func (m *MHA) Pairs() int64 {
	var p int64
	for _, k := range m.kernels {
		if k != nil {
			p += k.Pairs()
		}
	}
	return p
}
