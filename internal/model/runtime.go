package model

import (
	"sync"

	"torchgt/internal/tensor"
)

// ExecOptions tunes the execution engine that runs a model's hot paths.
// The zero value selects the defaults: head-level parallelism bounded by the
// tensor worker pool, with workspace pooling enabled.
type ExecOptions struct {
	// Workers bounds how many attention heads run concurrently per layer
	// (each on its own workspace). 0 picks tensor.Workers(); 1 forces
	// sequential heads.
	Workers int
	// PoolEnabled draws per-step scratch from pooled workspaces instead of
	// the heap, making steady-state training steps allocation-free.
	PoolEnabled bool
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.Workers <= 0 {
		o.Workers = tensor.Workers()
	}
	return o
}

// Runtime is the single-process execution Plan shared by every layer of one
// model: a set of worker-slot workspaces plus the head fan-out scheduler.
// One runtime is owned by one model (or one rank's replica); it must not be
// shared across concurrently-trained models. A nil *Runtime is valid and
// degrades to sequential, heap-allocated execution, which keeps old call
// sites working (and doubles as the "serial" plan).
type Runtime struct {
	opts ExecOptions
	wss  []*tensor.Workspace // one per worker slot; nil slots when pooling disabled
}

// NewRuntime builds an execution engine from opts.
func NewRuntime(opts ExecOptions) *Runtime {
	opts = opts.withDefaults()
	r := &Runtime{opts: opts}
	r.wss = make([]*tensor.Workspace, opts.Workers)
	if opts.PoolEnabled {
		for i := range r.wss {
			r.wss[i] = tensor.NewWorkspace()
		}
	}
	return r
}

// DefaultRuntime is the engine models get when the caller does not supply
// one: pooled workspaces, full worker parallelism.
func DefaultRuntime() *Runtime {
	return NewRuntime(ExecOptions{PoolEnabled: true})
}

// Options reports the resolved execution options.
func (r *Runtime) Options() ExecOptions {
	if r == nil {
		return ExecOptions{Workers: 1}
	}
	return r.opts
}

// Ranks implements Plan: the single-process engine is one simulated device.
func (r *Runtime) Ranks() int { return 1 }

// workspace returns the worker-slot workspace (nil when pooling is off or r
// is nil, which every consumer tolerates via the nil-workspace fallback).
func (r *Runtime) workspace(slot int) *tensor.Workspace {
	if r == nil || len(r.wss) == 0 {
		return nil
	}
	return r.wss[slot%len(r.wss)]
}

// StepReset returns every workspace buffer to the shared pools. Call at step
// boundaries, after the optimiser has consumed all gradients. Model forward
// passes also invoke it, so buffers never outlive two steps even in custom
// loops that forget to call it.
func (r *Runtime) StepReset() {
	if r == nil {
		return
	}
	for _, ws := range r.wss {
		ws.Reset()
	}
}

// AllocStats aggregates workspace counters across worker slots.
func (r *Runtime) AllocStats() tensor.WorkspaceStats {
	var st tensor.WorkspaceStats
	if r == nil {
		return st
	}
	for _, ws := range r.wss {
		s := ws.Stats()
		st.Gets += s.Gets
		st.PoolHits += s.PoolHits
		st.Resets += s.Resets
		st.InUse += s.InUse
		st.HeldBytes += s.HeldBytes
	}
	return st
}

// forEachHead fans body out over heads across the runtime's worker slots.
// Each invocation gets the workspace of the slot it runs on; head h writes
// only head-h-owned state, so bodies are race-free by construction. With one
// worker (or a nil runtime) the loop degrades to sequential execution on
// slot 0 — numerically identical, since heads are independent.
func (r *Runtime) forEachHead(heads int, body func(h int, ws *tensor.Workspace)) {
	w := 1
	if r != nil {
		w = r.opts.Workers
	}
	if w > heads {
		w = heads
	}
	if w <= 1 {
		for h := 0; h < heads; h++ {
			body(h, r.workspace(0))
		}
		return
	}
	var wg sync.WaitGroup
	for slot := 0; slot < w; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			ws := r.workspace(slot)
			for h := slot; h < heads; h += w {
				body(h, ws)
			}
		}(slot)
	}
	wg.Wait()
}

// forwardHeads implements Plan: fan the per-head kernels out across the
// runtime's worker slots. Heads are independent — they read shared q/k/v and
// add into disjoint column ranges of the shared concat — so the fan-out is
// race-free and bitwise identical to sequential execution.
func (r *Runtime) forwardHeads(m *MHA, q, k, v *tensor.Mat, spec *AttentionSpec) *tensor.Mat {
	s := q.Rows
	concat := r.workspace(0).Get(s, m.Hidden)
	r.forEachHead(m.Heads, func(h int, ws *tensor.Workspace) {
		qh := colSlice(ws, q, h*m.Dh, m.Dh)
		kh := colSlice(ws, k, h*m.Dh, m.Dh)
		vh := colSlice(ws, v, h*m.Dh, m.Dh)
		kr := m.newKernel(h, spec, s, ws)
		m.kernels[h] = kr
		oh := kr.Forward(qh, kh, vh)
		addColSlice(concat, oh, h*m.Dh)
	})
	return concat
}

// backwardHeads implements Plan: the mirrored backward fan-out, including
// per-head bias-table gradient accumulation (disjoint entries, see
// MHA.AccumBiasGrads).
func (r *Runtime) backwardHeads(m *MHA, dConcat *tensor.Mat) (dq, dk, dv *tensor.Mat) {
	s := dConcat.Rows
	ws0 := r.workspace(0)
	dq = ws0.Get(s, m.Hidden)
	dk = ws0.Get(s, m.Hidden)
	dv = ws0.Get(s, m.Hidden)
	r.forEachHead(m.Heads, func(h int, ws *tensor.Workspace) {
		dOh := colSlice(ws, dConcat, h*m.Dh, m.Dh)
		dqh, dkh, dvh := m.kernels[h].Backward(dOh)
		addColSlice(dq, dqh, h*m.Dh)
		addColSlice(dk, dkh, h*m.Dh)
		addColSlice(dv, dvh, h*m.Dh)
		// Safe under head parallelism: every touched gradient index is
		// ≡ h (mod Heads), so heads write disjoint entries.
		m.AccumBiasGrads(h, m.kernels[h], m.spec)
	})
	return dq, dk, dv
}
