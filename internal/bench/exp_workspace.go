package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"torchgt/internal/attention"
	"torchgt/internal/data"
	"torchgt/internal/graph"
	"torchgt/internal/model"
	"torchgt/internal/sparse"
	"torchgt/internal/tensor"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{
		ID:    "workspace",
		Title: "Execution engine: pooled vs unpooled allocations + head parallelism",
		Run:   runWorkspace,
	})
}

// measureStep reports average mallocs and bytes per fwd+bwd step of a kernel.
func measureStep(mk func() attention.Kernel, ws *tensor.Workspace, s, d int, steps int) (allocs, bytes float64) {
	rng := rand.New(rand.NewSource(11))
	q, k, v := tensor.New(s, d), tensor.New(s, d), tensor.New(s, d)
	tensor.RandN(q, rng, 0.5)
	tensor.RandN(k, rng, 0.5)
	tensor.RandN(v, rng, 0.5)
	dO := tensor.New(s, d)
	tensor.RandN(dO, rng, 1)
	kr := attention.WithWorkspace(mk(), ws)
	// warm-up populates the pools
	kr.Forward(q, k, v)
	kr.Backward(dO)
	ws.Reset()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < steps; i++ {
		kr.Forward(q, k, v)
		kr.Backward(dO)
		ws.Reset()
	}
	runtime.ReadMemStats(&after)
	n := float64(steps)
	return float64(after.Mallocs-before.Mallocs) / n, float64(after.TotalAlloc-before.TotalAlloc) / n
}

// runWorkspace quantifies the execution engine: per-kernel allocation
// reduction from workspace pooling (workers pinned to 1 so the numbers count
// kernel buffers, not goroutine launches), then the pool hit rate and
// head-parallel speed of a real training loop.
func runWorkspace(ctx context.Context, w io.Writer, scale Scale) error {
	s, steps := 1024, 50
	if scale == ScaleSmoke {
		s, steps = 256, 10
	}
	prev := tensor.SetWorkers(1)
	rng := rand.New(rand.NewSource(12))
	p := sparse.FromGraph(graph.BarabasiAlbert(s, 8, rng))

	fmt.Fprintf(w, "(a) kernel fwd+bwd allocations per step, S=%d (workers=1):\n", s)
	tb := &table{header: []string{"kernel", "unpooled allocs", "pooled allocs", "unpooled KB", "pooled KB", "alloc reduction"}}
	kernels := []struct {
		name string
		mk   func() attention.Kernel
	}{
		{"dense", func() attention.Kernel { return attention.NewDense() }},
		{"flash", func() attention.Kernel { return attention.NewFlash(false) }},
		{"sparse", func() attention.Kernel { return attention.NewSparse(p) }},
		{"kernelized", func() attention.Kernel { return attention.NewKernelized() }},
	}
	for _, k := range kernels {
		ua, ub := measureStep(k.mk, nil, s, 32, steps)
		pa, pb := measureStep(k.mk, tensor.NewWorkspace(), s, 32, steps)
		red := 0.0
		if ua > 0 {
			red = 1 - pa/ua
		}
		tb.addRow(k.name, f1(ua), f1(pa), f1(ub/1024), f1(pb/1024), pct(red))
	}
	tensor.SetWorkers(prev)
	tb.write(w)

	// (b) a real training run on the pooled, head-parallel engine
	nodes, epochs := 1024, 4
	if scale == ScaleSmoke {
		nodes, epochs = 256, 2
	}
	ds, err := loadNode("arxiv-sim", nodes, 51)
	if err != nil {
		return err
	}
	cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 52)
	fmt.Fprintln(w, "\n(b) GPH-Slim training epoch time by engine configuration:")
	tb2 := &table{header: []string{"engine", "avg epoch(s)", "pool hit rate"}}
	for _, ec := range []struct {
		label string
		exec  model.ExecOptions
	}{
		{"sequential, unpooled", model.ExecOptions{Workers: 1}},
		{"sequential, pooled", model.ExecOptions{Workers: 1, PoolEnabled: true}},
		{"head-parallel, pooled", model.ExecOptions{PoolEnabled: true}},
	} {
		exec := ec.exec
		tr := train.NewNodeTrainer(train.NodeConfig{
			Method: train.TorchGT, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 53,
			Exec: &exec,
		}, cfg, ds)
		res, err := tr.RunCtx(ctx)
		if err != nil {
			return err
		}
		st := tr.Model.Runtime().AllocStats()
		hit := "-"
		if st.Gets > 0 {
			hit = pct(float64(st.PoolHits) / float64(st.Gets))
		}
		tb2.addRow(ec.label, f3(res.AvgEpochTime.Seconds()), hit)
	}
	tb2.write(w)
	fmt.Fprintln(w, "expected shape: pooling removes nearly all per-step allocations; hit rate approaches 100% after warm-up")

	// (c) the reorder=cluster data transform feeding the same engine: the
	// identical preset opened with and without the transform, stepped through
	// the cluster-sparse kernel under the same even k-way blocking. The
	// transform concentrates NNZ on the diagonal, so the keep-CSR gathers hit
	// contiguous K/V windows instead of the whole sequence.
	fmt.Fprintln(w, "\n(c) cluster-sparse step time: reorder=cluster transform vs raw layout:")
	const rk = 8
	prev = tensor.SetWorkers(1)
	defer tensor.SetWorkers(prev)
	tb3 := &table{header: []string{"data spec", "diag NNZ frac", "step(ms)"}}
	var stepMS [2]float64
	for i, sp := range []struct {
		label, suffix string
	}{
		{"raw", ""},
		{"reorder=cluster&reorderk=8", "&reorder=cluster&reorderk=8"},
	} {
		d, err := data.OpenString(fmt.Sprintf("synth://arxiv-sim?nodes=%d&seed=61%s", nodes, sp.suffix))
		if err != nil {
			return err
		}
		g := d.Node.G
		bounds := make([]int32, rk+1)
		for j := range bounds {
			bounds[j] = int32(j * g.N / rk)
		}
		cl, err := sparse.NewClusterLayout(sparse.FromGraph(g), bounds)
		if err != nil {
			return err
		}
		kr := attention.NewClusterSparse(sparse.Reform(cl, 16, 0))
		q, kk, v := kernelQKV(g.N, 64, 62)
		timeKernel(kr, q, kk, v) // warm-up
		t := timeKernel(kr, q, kk, v)
		stepMS[i] = float64(t.Nanoseconds()) / 1e6
		tb3.addRow(sp.label, pct(cl.DiagonalNNZFraction()), f1(stepMS[i]))
	}
	tb3.write(w)
	fmt.Fprintf(w, "reordered vs raw cluster-sparse step: %.2fx\n", stepMS[0]/stepMS[1])
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
