package bench

import (
	"context"
	"fmt"
	"io"

	"torchgt/internal/dist"
	"torchgt/internal/encoding"
	"torchgt/internal/model"
	"torchgt/internal/nn"
	"torchgt/internal/sparse"
)

func init() {
	register(&Experiment{ID: "fig7", Title: "Multi-server scalability, simulated A100 cluster (Fig. 7)", Run: runFig7})
	register(&Experiment{ID: "fig9a", Title: "Max sequence length vs number of GPUs (Fig. 9a)", Run: runFig9a})
	register(&Experiment{ID: "fig9b", Title: "Training throughput vs sequence length (Fig. 9b)", Run: runFig9b})
	register(&Experiment{ID: "dist", Title: "Cluster-aware graph parallelism: real P-worker run + comm volume", Run: runDist})
}

func gphShape() dist.ModelShape {
	return dist.ModelShape{Layers: 4, Hidden: 64, Heads: 8, FFNHidden: 256}
}

// runFig7 uses the A100 cost model: (a) fixed S=1024K with growing GPU
// count; (b) fixed per-GPU load (S² ∝ P). GPH-Large's shape is used (as in
// the paper's large-model scaling runs) so the shardable compute dominates
// the fixed per-step overhead.
func runFig7(ctx context.Context, w io.Writer, scale Scale) error {
	pm := &dist.PerfModel{HW: dist.A100}
	shape := dist.ModelShape{Layers: 12, Hidden: 768, Heads: 32, FFNHidden: 3072}
	avgDeg := 20.0

	fmt.Fprintln(w, "(a) fixed S=1024K, iteration time vs GPUs:")
	tb := &table{header: []string{"GPUs", "sim iter(s)", "speedup vs 8"}}
	s := 1024 << 10
	var base float64
	for _, gpus := range []int{8, 16, 32, 64} {
		c := pm.StepTime(dist.KindClusterSparse, int64(avgDeg*float64(s)), s, shape, gpus)
		if gpus == 8 {
			base = c.Total.Seconds()
		}
		tb.addRow(fmt.Sprint(gpus), f3(c.Total.Seconds()), fmt.Sprintf("%.2fx", base/c.Total.Seconds()))
	}
	tb.write(w)

	fmt.Fprintln(w, "\n(b) fixed per-GPU load (S doubles ⇒ 4× GPUs):")
	tb2 := &table{header: []string{"S", "GPUs", "sim iter(s)"}}
	for _, cse := range []struct{ s, gpus int }{{256 << 10, 16}, {512 << 10, 64}} {
		c := pm.StepTime(dist.KindClusterSparse, int64(avgDeg*float64(cse.s)), cse.s, shape, cse.gpus)
		tb2.addRow(fmt.Sprint(cse.s), fmt.Sprint(cse.gpus), f3(c.Total.Seconds()))
	}
	tb2.write(w)
	fmt.Fprintln(w, "expected shape: (a) near-linear speedup (≈1.7x per GPU doubling); (b) roughly flat iteration time")
	return nil
}

// runFig9a reports the memory-model max sequence length for TorchGT vs
// GP-Raw on 1–8 GPUs.
func runFig9a(ctx context.Context, w io.Writer, scale Scale) error {
	mm := &dist.MemoryModel{HW: dist.RTX3090}
	shape := gphShape()
	tb := &table{header: []string{"GPUs", "gp-raw max S", "torchgt max S", "ratio"}}
	for _, gpus := range []int{1, 2, 4, 8} {
		raw := mm.MaxSeqLen(dist.MemDense, 20, shape, gpus)
		tgt := mm.MaxSeqLen(dist.MemSparse, 20, shape, gpus)
		tb.addRow(fmt.Sprint(gpus), fmt.Sprint(raw), fmt.Sprint(tgt), fmt.Sprintf("%.0fx", float64(tgt)/float64(raw)))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: torchgt scales ~linearly with GPUs into the millions; gp-raw stays pinned at tens of K")
	return nil
}

// runFig9b reports simulated throughput (samples/s) vs S on 8 GPUs.
func runFig9b(ctx context.Context, w io.Writer, scale Scale) error {
	pm := &dist.PerfModel{HW: dist.A100}
	shape := gphShape()
	avgDeg := 20.0
	tb := &table{header: []string{"S", "gp-flash samples/s", "torchgt samples/s", "ratio"}}
	for _, s := range []int{128 << 10, 256 << 10, 512 << 10, 1024 << 10} {
		flash := pm.StepTime(dist.KindDense, int64(s)*int64(s), s, shape, 8).Total.Seconds()
		tgt := pm.StepTime(dist.KindClusterSparse, int64(avgDeg*float64(s)), s, shape, 8).Total.Seconds()
		tb.addRow(fmt.Sprint(s), fmt.Sprintf("%.3g", float64(s)/flash), fmt.Sprintf("%.3g", float64(s)/tgt),
			fmt.Sprintf("%.0fx", flash/tgt))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: gp-flash throughput collapses with S (O(S²)); torchgt stays roughly flat")
	return nil
}

// runDist runs the real channel-based P-rank sequence-parallel plan and
// reports measured communication volume against the paper's 4·S·d/P formula.
func runDist(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, p, steps := 1024, 4, 3
	if scale == ScaleSmoke {
		nodes, steps = 256, 2
	}
	ds, err := loadNode("arxiv-sim", nodes, 49)
	if err != nil {
		return err
	}
	cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 50)
	cfg.Dropout = 0
	degIn, degOut := encoding.DegreeBuckets(ds.G, 63)
	in := &model.Inputs{X: ds.X, DegInIdx: degIn, DegOutIdx: degOut}
	pat := sparse.FromGraph(ds.G)
	spec := &model.AttentionSpec{Mode: model.ModeSparse, Pattern: pat}

	m := model.NewGraphTransformer(cfg)
	plan := model.NewSeqParallel(p, model.ExecOptions{PoolEnabled: true})
	m.SetPlan(plan)
	params := m.Params()
	opt := nn.NewAdam(1e-3)
	opt.ClipNorm = 5
	var lastLoss float64
	for st := 0; st < steps; st++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		logits := m.Forward(in, spec, true)
		loss, dl := nn.SoftmaxCrossEntropy(logits, ds.Y, ds.TrainMask)
		m.Backward(dl)
		plan.SyncGradients(params)
		opt.Step(params)
		plan.StepReset()
		lastLoss = loss
	}
	seqBytesPerRankStep := int64(nodes/p) * int64(cfg.Hidden) * 4 * int64(p-1) / int64(p) * int64(8*cfg.Layers)
	fmt.Fprintf(w, "P=%d ranks, %d steps, final loss %.4f\n", p, steps, lastLoss)
	fmt.Fprintf(w, "measured comm volume: %d bytes total (%.1f KB/rank/step incl. grad sync)\n",
		plan.Comm().TotalBytes(), float64(plan.Comm().TotalBytes())/float64(p*steps)/1024)
	fmt.Fprintf(w, "Ulysses resharding volume per rank per step: %d bytes (= 8L reshards of (S/P)(d)(P-1)/P); O(S/P) per the paper's §III-C\n",
		seqBytesPerRankStep)
	fmt.Fprintln(w, "expected shape: sequence-parallel volume scales as S/P, unlike all-gather's O(S)")
	return nil
}
