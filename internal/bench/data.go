package bench

import (
	"fmt"
	"sync"

	"torchgt/internal/data"
	"torchgt/internal/graph"
)

// The experiment harness loads its node-level datasets through loadNode so
// one override point serves every experiment: SetNodeDataSpec points the
// whole harness at a user-supplied dataset spec (torchgt-bench -data), and
// experiments keep their per-experiment scale by subsampling the override
// when it is larger than the size they ask for.
var (
	dataMu       sync.Mutex
	nodeSpec     string
	nodeSpecBase *data.Dataset // the opened override, cached across experiments
)

// SetNodeDataSpec routes every experiment's node-level dataset through the
// given spec ("" restores the built-in synthetic presets). The spec must
// resolve to a node dataset; resolution errors surface on the first
// experiment that loads data.
func SetNodeDataSpec(spec string) {
	dataMu.Lock()
	defer dataMu.Unlock()
	nodeSpec = spec
	nodeSpecBase = nil
}

// loadNode returns the node dataset an experiment trains on: the named
// synthetic preset by default, or the override spec (subsampled to the
// experiment's requested node count when larger — through the same
// transform the spec grammar exposes, seeded by the experiment seed so
// distinct experiments see distinct samples).
func loadNode(name string, nodes int, seed int64) (*graph.NodeDataset, error) {
	dataMu.Lock()
	defer dataMu.Unlock()
	if nodeSpec == "" {
		return graph.LoadNodeScaled(name, nodes, seed)
	}
	if nodeSpecBase == nil {
		d, err := data.OpenString(nodeSpec)
		if err != nil {
			return nil, fmt.Errorf("bench: opening -data spec: %w", err)
		}
		if d.Node == nil {
			return nil, fmt.Errorf("bench: -data spec %s is a graph-level dataset; experiments need a node dataset", nodeSpec)
		}
		nodeSpecBase = d
	}
	if nodes > 0 && nodeSpecBase.Node.G.N > nodes {
		d, err := data.Apply(nodeSpecBase, data.Subsample(nodes, seed))
		if err != nil {
			return nil, err
		}
		return d.Node, nil
	}
	return nodeSpecBase.Node, nil
}
