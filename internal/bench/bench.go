// Package bench is the experiment harness: one entry point per table and
// figure of the paper's evaluation (§IV), each regenerating the
// corresponding rows/series at laptop scale. Shapes (orderings, ratios,
// crossovers) are the reproduction target; absolute numbers are not.
// EXPERIMENTS.md records paper-vs-measured for every experiment.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Experiment is a runnable reproduction unit. Run honours ctx: experiments
// drive their training through the shared Loop engine (trainer RunCtx), so
// cancellation stops at the next optimiser-step boundary.
type Experiment struct {
	ID    string // e.g. "table5", "fig9a"
	Title string
	Run   func(ctx context.Context, w io.Writer, scale Scale) error
}

// Scale selects how big the synthetic workloads are.
type Scale int

const (
	// ScaleSmoke is for CI: seconds per experiment.
	ScaleSmoke Scale = iota
	// ScaleFull is the default laptop scale: minutes per experiment.
	ScaleFull
)

var registry = map[string]*Experiment{}

func register(e *Experiment) { registry[e.ID] = e }

// Get returns the experiment registered under id.
func Get(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment at the given scale, writing a combined
// report. Cancelling ctx aborts between (and within) experiments.
func RunAll(ctx context.Context, w io.Writer, scale Scale) error {
	for _, id := range IDs() {
		if err := ctx.Err(); err != nil {
			return err
		}
		e := registry[id]
		fmt.Fprintf(w, "\n================ %s — %s ================\n", e.ID, e.Title)
		if err := e.Run(ctx, w, scale); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// table prints an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.header)
	for i, wd := range widths {
		fmt.Fprint(w, repeat('-', wd), "  ")
		_ = i
	}
	fmt.Fprintln(w)
	for _, r := range t.rows {
		printRow(r)
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
