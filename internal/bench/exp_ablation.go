package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"torchgt/internal/attention"
	"torchgt/internal/encoding"
	"torchgt/internal/graph"
	"torchgt/internal/model"
	"torchgt/internal/nn"
	"torchgt/internal/partition"
	"torchgt/internal/sparse"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{ID: "ablation-interleave", Title: "Ablation: dual-interleave period (accuracy vs compute)", Run: runAblationInterleave})
	register(&Experiment{ID: "ablation-reorder", Title: "Ablation: cluster reordering on/off (locality and kernel time)", Run: runAblationReorder})
	register(&Experiment{ID: "ablation-db", Title: "Ablation: sub-block size db, measured CPU kernel time", Run: runAblationDb})
	register(&Experiment{ID: "ablation-sampling", Title: "Ablation: ego-graph sampling vs long-sequence training (issue I2)", Run: runAblationSampling})
	register(&Experiment{ID: "ablation-bigbird", Title: "Ablation: topology pattern vs NLP-style BigBird pattern (issue I2)", Run: runAblationBigBird})
}

// runAblationInterleave sweeps the dense-overlay period of Dual-interleaved
// Attention: interval 1 = dense every step (full attention), large interval
// ≈ pure sparse. The paper's design point (periodic overlay) should match
// full-attention accuracy at a fraction of the pairs.
func runAblationInterleave(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 16
	if scale == ScaleSmoke {
		nodes, epochs = 512, 6
	}
	ds, err := loadNode("arxiv-sim", nodes, 63)
	if err != nil {
		return err
	}
	cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 64)
	tb := &table{header: []string{"interval", "dense steps", "test acc", "pairs/epoch", "tepoch(s)"}}
	for _, interval := range []int{1, 4, 8, 16, 1 << 30} {
		tr := train.NewNodeTrainer(train.NodeConfig{
			Method: train.TorchGT, Epochs: epochs, LR: 2e-3,
			Interval: interval, FixedBeta: -1, Seed: 65,
		}, cfg, ds)
		res, err := tr.RunCtx(ctx)
		if err != nil {
			return err
		}
		dense := 0
		for ep := 0; ep < epochs; ep++ {
			if interval <= 1 || ep%interval == 0 {
				dense++
			}
		}
		if interval == 1<<30 {
			dense = 1 // only epoch 0
		}
		label := fmt.Sprint(interval)
		if interval == 1<<30 {
			label = "∞ (pure sparse)"
		}
		tb.addRow(label, fmt.Sprint(dense), pct(res.FinalTestAcc),
			fmt.Sprint(res.TotalPairs/int64(epochs)), f3(res.AvgEpochTime.Seconds()))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: larger intervals cut attended pairs sharply at comparable accuracy;")
	fmt.Fprintln(w, "on planted-label data the sparse pattern is already sufficient (labels are locally")
	fmt.Fprintln(w, "decodable), so unlike the paper's real graphs the dense overlays are not needed for")
	fmt.Fprintln(w, "accuracy here — see EXPERIMENTS.md deviation #1")
	return nil
}

// runAblationReorder measures what the METIS cluster reordering buys: the
// diagonal concentration of the pattern and the cluster-sparse kernel time,
// with and without the reorder.
func runAblationReorder(ctx context.Context, w io.Writer, scale Scale) error {
	s := 4096
	if scale == ScaleSmoke {
		s = 1024
	}
	rng := rand.New(rand.NewSource(67))
	nb := s / 128
	sizes := make([]int, nb)
	for i := range sizes {
		sizes[i] = s / nb
	}
	g, _ := graph.SBM(graph.SBMConfig{BlockSizes: sizes, AvgDegIn: 12, AvgDegOut: 2}, rng)
	g = g.Permute(graph.ShuffledIDs(g.N, rng))
	k := 8
	evenBounds := make([]int32, k+1)
	for i := range evenBounds {
		evenBounds[i] = int32(i * s / k)
	}
	time3 := func(gr *graph.Graph, bounds []int32) (float64, float64, error) {
		p := sparse.FromGraph(gr)
		cl, err := sparse.NewClusterLayout(p, bounds)
		if err != nil {
			return 0, 0, err
		}
		r := sparse.ReformIndolent(cl, 16)
		q, kk, v := kernelQKV(s, 32, 68)
		kr := attention.NewClusterSparse(r)
		t0 := time.Now()
		o := kr.Forward(q, kk, v)
		kr.Backward(o)
		return cl.DiagonalNNZFraction(), time.Since(t0).Seconds(), nil
	}
	diag0, t0, err := time3(g, evenBounds)
	if err != nil {
		return err
	}
	part := partition.Partition(g, k, 69)
	perm, bounds := partition.ClusterOrder(part, k)
	diag1, t1, err := time3(g.Permute(perm), bounds)
	if err != nil {
		return err
	}
	tb := &table{header: []string{"layout", "diag NNZ frac", "kernel fwd+bwd (s)"}}
	tb.addRow("shuffled (no reorder)", pct(diag0), f3(t0))
	tb.addRow("cluster-reordered", pct(diag1), f3(t1))
	tb.write(w)
	fmt.Fprintln(w, "expected shape: reordering concentrates entries onto the diagonal clusters;")
	fmt.Fprintln(w, "the kernel-time effect is small on CPU (large caches absorb the irregularity) —")
	fmt.Fprintln(w, "the GPU-side locality payoff is what fig6's cache/warp simulation measures")
	return nil
}

// runAblationDb measures real CPU cluster-sparse kernel time across db, the
// wall-clock companion to the simulated Fig. 6.
func runAblationDb(ctx context.Context, w io.Writer, scale Scale) error {
	s := 4096
	if scale == ScaleSmoke {
		s = 1024
	}
	rng := rand.New(rand.NewSource(71))
	nb := s / 128
	sizes := make([]int, nb)
	for i := range sizes {
		sizes[i] = s / nb
	}
	g, _ := graph.SBM(graph.SBMConfig{BlockSizes: sizes, AvgDegIn: 12, AvgDegOut: 2}, rng)
	part := partition.Partition(g, 8, 72)
	perm, bounds := partition.ClusterOrder(part, 8)
	g = g.Permute(perm)
	p := sparse.FromGraph(g)
	cl, err := sparse.NewClusterLayout(p, bounds)
	if err != nil {
		return err
	}
	q, kk, v := kernelQKV(s, 32, 73)
	tb := &table{header: []string{"db", "blocks", "pairs", "kernel fwd+bwd (ms)"}}
	for _, db := range []int{4, 8, 16, 32} {
		r := sparse.Reform(cl, db, 1.0)
		kr := attention.NewClusterSparse(r)
		t0 := time.Now()
		o := kr.Forward(q, kk, v)
		kr.Backward(o)
		dt := time.Since(t0)
		tb.addRow(fmt.Sprint(db), fmt.Sprint(len(r.Blocks)), fmt.Sprint(kr.Pairs()), fmt.Sprintf("%.1f", ms(dt)))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: mid-range db balances block count against padded pairs")
	return nil
}

// runAblationSampling reproduces the paper's issue-I2 claim: ego-graph
// sampled training (Gophormer/NAGphormer family) drops connectivity and
// loses accuracy against long-sequence training at the same epoch budget.
func runAblationSampling(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, egoEpochs := 1024, 3
	if scale == ScaleSmoke {
		nodes, egoEpochs = 512, 2
	}
	// High feature noise so that a ≤16-node ego graph carries too few
	// same-class samples to denoise, while full-graph attention can pool
	// hundreds — the context-width mechanism behind the paper's issue I2.
	// Optimiser updates are matched: the ego trainer takes
	// trainNodes/batch updates per epoch; the full-graph trainer takes one
	// per epoch, so its epoch count is scaled to the same total.
	ds := graph.MakeNodeDataset(graph.NodeDatasetConfig{
		Name: "sampling-hard", NumNodes: nodes, NumBlocks: nodes / 64,
		NumClasses: 4, FeatDim: 24, AvgDegIn: 10, AvgDegOut: 2,
		PowerLaw: 2.4, NoiseStd: 5.0, Shuffle: true, Seed: 75,
	})
	cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 76)
	batch := 64
	trainNodes := 0
	for _, m := range ds.TrainMask {
		if m {
			trainNodes++
		}
	}
	egoSteps := egoEpochs * (trainNodes + batch - 1) / batch

	ego := train.NewEgoTrainer(train.EgoConfig{
		Epochs: egoEpochs, LR: 2e-3, Hops: 2, MaxSize: 16, Batch: batch, Seed: 77,
	}, cfg, ds)
	egoRes, err := ego.Run()
	if err != nil {
		return err
	}

	long := train.NewNodeTrainer(train.NodeConfig{
		Method: train.TorchGT, Epochs: egoSteps, LR: 2e-3, FixedBeta: -1, Seed: 77,
	}, cfg, ds)
	longRes, err := long.RunCtx(ctx)
	if err != nil {
		return err
	}

	tb := &table{header: []string{"training regime", "updates", "test acc"}}
	tb.addRow("ego-graph sampling (≤16 nodes/target)", fmt.Sprint(egoSteps), pct(egoRes.FinalTestAcc))
	tb.addRow("long sequence (full graph, TorchGT)", fmt.Sprint(egoSteps), pct(longRes.FinalTestAcc))
	tb.write(w)
	fmt.Fprintln(w, "paper claim (§II-C issue I2): sampling's truncated context loses accuracy on")
	fmt.Fprintln(w, "real graphs. KNOWN NEGATIVE RESULT here: planted SBM labels are decodable from")
	fmt.Fprintln(w, "any 2-hop ego graph, so sampling cannot lose on this data regardless of update")
	fmt.Fprintln(w, "matching — see EXPERIMENTS.md deviation #1. The experiment records the matched-")
	fmt.Fprintln(w, "update comparison for completeness.")
	return nil
}

// runAblationBigBird compares the topology-induced pattern against an
// NLP-style BigBird pattern at matched density — the paper's issue-I2 claim
// that structure-agnostic sparse attention "fails to consider the inherent
// graph structure ... resulting in subpar model performance".
func runAblationBigBird(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 16
	if scale == ScaleSmoke {
		nodes, epochs = 512, 6
	}
	ds, err := loadNode("arxiv-sim", nodes, 81)
	if err != nil {
		return err
	}
	cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 82)
	topo := sparse.FromGraph(ds.G)
	// match BigBird density to the topology pattern
	perRow := topo.NNZ() / topo.S
	window := perRow / 4
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(83))
	bigbird := sparse.BigBird(ds.G.N, window, 2, perRow/4+1, rng)

	degIn, degOut := encoding.DegreeBuckets(ds.G, 63)
	in := &model.Inputs{X: ds.X, DegInIdx: degIn, DegOutIdx: degOut}
	runWith := func(p *sparse.Pattern) float64 {
		m := model.NewGraphTransformer(cfg)
		spec := &model.AttentionSpec{Mode: model.ModeSparse, Pattern: p}
		opt := nn.NewAdam(2e-3)
		opt.ClipNorm = 5
		for ep := 0; ep < epochs; ep++ {
			logits := m.Forward(in, spec, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, ds.Y, ds.TrainMask)
			m.Backward(dl)
			opt.Step(m.Params())
		}
		logits := m.Forward(in, spec, false)
		return nn.Accuracy(logits, ds.Y, ds.TestMask)
	}
	tb := &table{header: []string{"pattern", "NNZ", "test acc"}}
	tb.addRow("topology-induced", fmt.Sprint(topo.NNZ()), pct(runWith(topo)))
	tb.addRow("bigbird (window+global+random)", fmt.Sprint(bigbird.NNZ()), pct(runWith(bigbird)))
	tb.write(w)
	fmt.Fprintln(w, "expected shape: topology pattern beats the structure-agnostic pattern at matched density")
	return nil
}
