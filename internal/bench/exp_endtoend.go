package bench

import (
	"context"
	"fmt"
	"io"

	"torchgt/internal/dist"
	"torchgt/internal/gpusim"
	"torchgt/internal/model"
	"torchgt/internal/partition"
	"torchgt/internal/sparse"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{ID: "table5", Title: "End-to-end epoch time & accuracy on one 3090 server (Table V)", Run: runTable5})
	register(&Experiment{ID: "table6", Title: "Epoch time on one A100 server, simulated (Table VI)", Run: runTable6})
	register(&Experiment{ID: "table7", Title: "BF16 vs FP32 accuracy & throughput (Table VII)", Run: runTable7})
	register(&Experiment{ID: "table8", Title: "Transfer threshold βthre sensitivity (Table VIII)", Run: runTable8})
	register(&Experiment{ID: "fig6", Title: "Sub-block size db: occupancy / hit rate / throughput (Fig. 6)", Run: runFig6})
	register(&Experiment{ID: "preproc", Title: "Pre-processing cost vs training time (§IV-E)", Run: runPreproc})
}

// paperSeqLen maps our scaled dataset onto the sequence length the paper
// trains it at (for the memory-model OOM column).
var paperSeqLen = map[string]int{
	"arxiv-sim":      64 << 10,
	"products-sim":   256 << 10,
	"amazon-sim":     256 << 10,
	"papers100m-sim": 256 << 10,
	"flickr-sim":     64 << 10,
}

func table5Workloads(scale Scale) (datasets []string, nodes, epochs int) {
	if scale == ScaleSmoke {
		return []string{"arxiv-sim"}, 512, 6
	}
	return []string{"arxiv-sim", "products-sim", "amazon-sim"}, 2048, 15
}

// runTable5 trains GPH-Slim and GT with each method. GP-Raw's row is decided
// by the memory model at the paper's sequence length (it cannot even
// allocate, exactly like Table V's OOM entries); GP-Flash and TorchGT train
// for real and also report simulated 3090 epoch times at paper scale.
func runTable5(ctx context.Context, w io.Writer, scale Scale) error {
	datasets, nodes, epochs := table5Workloads(scale)
	mm := &dist.MemoryModel{HW: dist.RTX3090}
	pm := &dist.PerfModel{HW: dist.RTX3090}
	for _, mname := range []string{"gph-slim", "gt"} {
		tb := &table{header: []string{"dataset", "method", "tepoch(s)", "sim-3090 tepoch(s)", "test acc", "speedup"}}
		for _, dsName := range datasets {
			ds, err := loadNode(dsName, nodes, 31)
			if err != nil {
				return err
			}
			var cfg model.Config
			if mname == "gt" {
				cfg = model.GTConfig(ds.X.Cols, ds.NumClasses, 32)
			} else {
				cfg = model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 32)
			}
			shape := dist.ModelShape{Layers: cfg.Layers, Hidden: cfg.Hidden, Heads: cfg.Heads, FFNHidden: 4 * cfg.Hidden}
			ps := paperSeqLen[dsName]
			avgDeg := ds.G.AvgDegree() + 1

			// GP-Raw: memory model at paper scale
			if mm.WouldOOM(dist.MemDense, ps, int64(avgDeg*float64(ps)), shape, 8) {
				tb.addRow(dsName, "gp-raw", "OOM", "OOM", "-", "-")
			}

			var flashEpoch float64
			for _, method := range []train.Method{train.GPFlash, train.TorchGT} {
				tr := train.NewNodeTrainer(train.NodeConfig{
					Method: method, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 33,
				}, cfg, ds)
				res, err := tr.RunCtx(ctx)
				if err != nil {
					return err
				}
				measured := res.AvgEpochTime.Seconds()
				kind := dist.KindDense
				pairsPerHead := int64(ps) * int64(ps)
				if method == train.TorchGT {
					kind = dist.KindClusterSparse
					pairsPerHead = int64(avgDeg * float64(ps))
				}
				sim := pm.StepTime(kind, pairsPerHead, ps, shape, 8).Total.Seconds()
				speedup := "-"
				if method == train.GPFlash {
					flashEpoch = measured
				} else if measured > 0 {
					speedup = fmt.Sprintf("%.1fx", flashEpoch/measured)
				}
				tb.addRow(dsName, method.String(), f3(measured), f3(sim), pct(res.FinalTestAcc), speedup)
			}
		}
		fmt.Fprintf(w, "\nmodel %s:\n", mname)
		tb.write(w)
	}
	fmt.Fprintln(w, "expected shape: gp-raw OOMs; torchgt beats gp-flash in epoch time at equal-or-better accuracy")
	return nil
}

// runTable6 reports simulated A100 epoch times for GPH-Slim.
func runTable6(ctx context.Context, w io.Writer, scale Scale) error {
	datasets, _, _ := table5Workloads(scale)
	pm := &dist.PerfModel{HW: dist.A100}
	cfg := model.GraphormerSlim(64, 10, 1)
	shape := dist.ModelShape{Layers: cfg.Layers, Hidden: cfg.Hidden, Heads: cfg.Heads, FFNHidden: 4 * cfg.Hidden}
	tb := &table{header: []string{"dataset", "gp-flash sim tepoch(s)", "torchgt sim tepoch(s)", "speedup"}}
	for _, dsName := range datasets {
		ps := paperSeqLen[dsName]
		flash := pm.StepTime(dist.KindDense, int64(ps)*int64(ps), ps, shape, 8).Total.Seconds()
		tgt := pm.StepTime(dist.KindClusterSparse, int64(20*ps), ps, shape, 8).Total.Seconds()
		tb.addRow(dsName, f3(flash), f3(tgt), fmt.Sprintf("%.1fx", flash/tgt))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: speedups persist on A100 but are smaller than on 3090 (paper: 1.9–4.2x)")
	return nil
}

// runTable7 compares GP-Flash (BF16), TorchGT-BF16 and TorchGT-FP32.
func runTable7(ctx context.Context, w io.Writer, scale Scale) error {
	datasets := []string{"arxiv-sim", "amazon-sim"}
	nodes, epochs := 2048, 15
	if scale == ScaleSmoke {
		datasets = []string{"arxiv-sim"}
		nodes, epochs = 512, 6
	}
	tb := &table{header: []string{"dataset", "method", "tepoch(s)", "test acc"}}
	for _, dsName := range datasets {
		ds, err := loadNode(dsName, nodes, 35)
		if err != nil {
			return err
		}
		cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 36)
		for _, mc := range []struct {
			label  string
			method train.Method
		}{
			{"gp-flash(bf16)", train.GPFlash},
			{"torchgt-bf16", train.TorchGTBF16},
			{"torchgt-fp32", train.TorchGT},
		} {
			tr := train.NewNodeTrainer(train.NodeConfig{
				Method: mc.method, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 37,
			}, cfg, ds)
			res, err := tr.RunCtx(ctx)
			if err != nil {
				return err
			}
			tb.addRow(dsName, mc.label, f3(res.AvgEpochTime.Seconds()), pct(res.FinalTestAcc))
		}
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: torchgt-bf16 fastest; torchgt-fp32 highest accuracy; bf16 rows trade accuracy for speed")
	return nil
}

// runTable8 sweeps fixed βthre values plus the Auto Tuner.
func runTable8(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 12
	if scale == ScaleSmoke {
		nodes, epochs = 512, 5
	}
	ds, err := loadNode("arxiv-sim", nodes, 39)
	if err != nil {
		return err
	}
	betaG := ds.G.WithSelfLoops().Sparsity()
	for _, mname := range []string{"gph-slim", "gt"} {
		var cfg model.Config
		if mname == "gt" {
			cfg = model.GTConfig(ds.X.Cols, ds.NumClasses, 40)
		} else {
			cfg = model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 40)
		}
		tb := &table{header: []string{"βthre", "tepoch(s)", "test acc", "pairs/epoch"}}
		type row struct {
			label string
			beta  float64
		}
		rows := []row{
			{"βG", betaG}, {"1.5βG", 1.5 * betaG}, {"5βG", 5 * betaG},
			{"7βG", 7 * betaG}, {"10βG", 10 * betaG}, {"auto", -1},
		}
		for _, r := range rows {
			// finer cluster grid (k=16 → 256 clusters) so the βthre ladder
			// meets a spread of cluster densities
			tr := train.NewNodeTrainer(train.NodeConfig{
				Method: train.TorchGT, Epochs: epochs, LR: 2e-3,
				FixedBeta: r.beta, UseFixedBeta: r.beta >= 0,
				ClusterK: 16, Db: 8, Seed: 41,
			}, cfg, ds)
			res, err := tr.RunCtx(ctx)
			if err != nil {
				return err
			}
			tb.addRow(r.label, f3(res.AvgEpochTime.Seconds()), pct(res.FinalTestAcc),
				fmt.Sprint(res.TotalPairs/int64(epochs)))
		}
		fmt.Fprintf(w, "\nmodel %s (βG=%.5f):\n", mname, betaG)
		tb.write(w)
	}
	fmt.Fprintln(w, "expected shape: larger βthre transfers more clusters (different pairs/epoch); auto tuner lands between the extremes")
	return nil
}

// runFig6 sweeps db through the GPU cache/warp simulator.
func runFig6(ctx context.Context, w io.Writer, scale Scale) error {
	s := 4096
	if scale == ScaleSmoke {
		s = 1024
	}
	ds, err := loadNode("products-sim", s, 43)
	if err != nil {
		return err
	}
	k := gpusim.ChooseK(s, 64, gpusim.RTX3090Spec)
	part := partition.Partition(ds.G, k, 44)
	perm, bounds := partition.ClusterOrder(part, k)
	g := ds.G.Permute(perm)
	p := sparse.FromGraph(g)
	cl, err := sparse.NewClusterLayout(p, bounds)
	if err != nil {
		return err
	}
	for _, spec := range []gpusim.GPUSpec{gpusim.RTX3090Spec, gpusim.A100Spec} {
		stats := gpusim.SweepDb(cl, 1.0, []int{4, 8, 16, 32}, 64, spec)
		tb := &table{header: []string{"db", "warp occupancy", "L1 hit", "L2 hit", "useful frac", "norm. throughput"}}
		base := stats[0].Throughput
		for _, st := range stats {
			tb.addRow(fmt.Sprint(st.Db), pct(st.WarpOccupancy), pct(st.L1HitRate), pct(st.L2HitRate),
				pct(st.UsefulFraction), f2(st.Throughput/base))
		}
		fmt.Fprintf(w, "\n%s (chosen k=%d, chosen db=%d):\n", spec.Name, k,
			gpusim.ChooseDb(cl, 1.0, 64, spec))
		tb.write(w)
	}
	fmt.Fprintln(w, "expected shape: hit rates rise and occupancy falls with db; throughput peaks mid-range")
	return nil
}

// runPreproc measures partition+pattern pre-processing against total
// training time.
func runPreproc(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 15
	if scale == ScaleSmoke {
		nodes, epochs = 512, 5
	}
	tb := &table{header: []string{"dataset", "preprocess(s)", "train(s)", "preprocess share"}}
	for _, dsName := range []string{"arxiv-sim", "products-sim"} {
		ds, err := loadNode(dsName, nodes, 45)
		if err != nil {
			return err
		}
		cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 46)
		tr := train.NewNodeTrainer(train.NodeConfig{
			Method: train.TorchGT, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 47,
		}, cfg, ds)
		res, err := tr.RunCtx(ctx)
		if err != nil {
			return err
		}
		var total float64
		for _, p := range res.Curve {
			total += p.EpochTime.Seconds()
		}
		pre := res.PreprocessTime.Seconds()
		tb.addRow(dsName, f3(pre), f3(total), pct(pre/(pre+total)))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: pre-processing is a small share of total training (paper: ≤5.4%)")
	return nil
}
