package bench

import (
	"context"
	"fmt"
	"io"

	"torchgt/internal/graph"
	"torchgt/internal/model"
	"torchgt/internal/nn"
	"torchgt/internal/tensor"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{ID: "table1", Title: "Graph transformers vs classical GNNs (Table I)", Run: runTable1})
	register(&Experiment{ID: "fig1", Title: "Test accuracy vs sequence length (Fig. 1)", Run: runFig1})
}

// runTable1 trains GCN/GAT/GT/Graphormer on a node task (flickr-sim) and
// GCN-pool/GT/Graphormer on a graph regression task (zinc-sim). Expected
// shape: transformers beat the message-passing baselines on both columns.
func runTable1(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs, graphs, gEpochs := 2048, 40, 240, 15
	if scale == ScaleSmoke {
		nodes, epochs, graphs, gEpochs = 384, 15, 60, 6
	}
	nodeDS, err := loadNode("flickr-sim", nodes, 1)
	if err != nil {
		return err
	}
	fd := nodeDS.X.Cols

	// --- node column ---
	nodeAcc := map[string]float64{}
	{
		m := model.NewGCN(nodeDS.G, fd, 64, nodeDS.NumClasses, 0.1, 2)
		opt := nn.NewAdam(5e-3)
		var logits *tensor.Mat
		for ep := 0; ep < epochs; ep++ {
			logits = m.Forward(nodeDS.X, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, nodeDS.Y, nodeDS.TrainMask)
			m.Backward(dl)
			opt.Step(m.Params())
		}
		nodeAcc["GCN"] = nn.Accuracy(m.Forward(nodeDS.X, false), nodeDS.Y, nodeDS.TestMask)
	}
	{
		m := model.NewGAT(nodeDS.G, fd, 64, nodeDS.NumClasses, 3)
		opt := nn.NewAdam(5e-3)
		for ep := 0; ep < epochs; ep++ {
			logits := m.Forward(nodeDS.X, true)
			_, dl := nn.SoftmaxCrossEntropy(logits, nodeDS.Y, nodeDS.TrainMask)
			m.Backward(dl)
			opt.Step(m.Params())
		}
		nodeAcc["GAT"] = nn.Accuracy(m.Forward(nodeDS.X, false), nodeDS.Y, nodeDS.TestMask)
	}
	for _, mc := range []struct {
		name string
		cfg  model.Config
	}{
		{"GT", model.GTConfig(fd, nodeDS.NumClasses, 4)},
		{"Graphormer", model.GraphormerSlim(fd, nodeDS.NumClasses, 5)},
	} {
		tr := train.NewNodeTrainer(train.NodeConfig{
			Method: train.TorchGT, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 6,
		}, mc.cfg, nodeDS)
		res, err := tr.RunCtx(ctx)
		if err != nil {
			return err
		}
		nodeAcc[mc.name] = res.FinalTestAcc
	}

	// --- graph regression column (ZINC-like MAE) ---
	zinc := graph.MakeGraphDataset(graph.GraphDatasetConfig{
		Name: "zinc-sim", Task: graph.GraphRegression, NumGraphs: graphs,
		MinNodes: 12, MaxNodes: 30, FeatDim: 16, Seed: 7,
	})
	zincMAE := map[string]float64{}
	{
		m := model.NewGCNGraph(16, 64, 1, 8)
		opt := nn.NewAdam(3e-3)
		for ep := 0; ep < gEpochs; ep++ {
			for _, gi := range zinc.TrainIdx {
				out := m.Forward(zinc.Graphs[gi], zinc.Feats[gi])
				_, d := nn.MSE(out, []float32{zinc.Targets[gi]})
				m.Backward(d)
				opt.Step(m.Params())
			}
		}
		preds := tensor.New(len(zinc.TestIdx), 1)
		targets := make([]float32, len(zinc.TestIdx))
		for x, gi := range zinc.TestIdx {
			preds.Set(x, 0, m.Forward(zinc.Graphs[gi], zinc.Feats[gi]).At(0, 0))
			targets[x] = zinc.Targets[gi]
		}
		zincMAE["GCN"] = nn.MAE(preds, targets)
	}
	for _, mc := range []struct {
		name string
		cfg  model.Config
	}{
		{"GT", model.GTConfig(16, 1, 9)},
		{"Graphormer", model.GraphormerSlim(16, 1, 10)},
	} {
		tr := train.NewGraphTrainer(train.GraphConfig{
			Method: train.TorchGT, Epochs: gEpochs, LR: 2e-3, BatchSize: 8, Seed: 11,
		}, mc.cfg, zinc)
		if _, err := tr.RunCtx(ctx); err != nil {
			return err
		}
		zincMAE[mc.name] = tr.EvalMAE()
	}

	tb := &table{header: []string{"Model", "zinc-sim MAE↓", "flickr-sim Acc↑"}}
	for _, name := range []string{"GCN", "GAT", "GT", "Graphormer"} {
		mae := "-"
		if v, ok := zincMAE[name]; ok {
			mae = f3(v)
		}
		acc := "-"
		if v, ok := nodeAcc[name]; ok {
			acc = pct(v)
		}
		tb.addRow(name, mae, acc)
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: transformer rows beat GNN rows on both columns")
	return nil
}

// runFig1 sweeps sequence length for Graphormer (aminer-sim) and
// NodeFormer-lite (pokec-sim). Expected shape: accuracy increases with S.
func runFig1(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 10
	sweepA := []int{64, 128, 256, 512}
	sweepB := []int{128, 256, 512, 1024}
	if scale == ScaleSmoke {
		nodes, epochs = 512, 5
		sweepA = []int{32, 64, 128}
		sweepB = []int{64, 128, 256}
	}
	// Fig. 1 needs feature noise high enough that short sequences carry too
	// little same-class context; the presets are tuned for full-graph
	// training, so regenerate at higher noise here.
	mk := func(name string, classes int, noise float64, seed int64) *graph.NodeDataset {
		return graph.MakeNodeDataset(graph.NodeDatasetConfig{
			Name: name, NumNodes: nodes, NumBlocks: nodes / 64, NumClasses: classes,
			FeatDim: 32, AvgDegIn: 12, AvgDegOut: 3, PowerLaw: 2.4,
			NoiseStd: noise, Shuffle: true, Seed: seed,
		})
	}
	run := func(ds *graph.NodeDataset, method train.Method, sweep []int, seed int64) error {
		tb := &table{header: []string{"S", "epochs", "test acc"}}
		// equalise the number of optimiser steps across sequence lengths
		// (steps/epoch = N/S, so epochs scale with S); otherwise short
		// sequences get many more updates and the context effect is masked.
		baseSteps := epochs * (ds.G.N / sweep[len(sweep)-1])
		for _, s := range sweep {
			var cfg model.Config
			if method == train.NodeFormerKernel {
				cfg = model.NodeFormerLite(ds.X.Cols, ds.NumClasses, seed+1)
			} else {
				cfg = model.GraphormerSlim(ds.X.Cols, ds.NumClasses, seed+1)
			}
			eps := baseSteps * s / ds.G.N
			if eps < 1 {
				eps = 1
			}
			tr := train.NewSeqTrainer(train.SeqConfig{
				Method: method, Epochs: eps, SeqLen: s, Seed: seed + 2,
			}, cfg, ds)
			res, err := tr.RunCtx(ctx)
			if err != nil {
				return err
			}
			tb.addRow(fmt.Sprint(s), fmt.Sprint(eps), pct(res.FinalTestAcc))
		}
		fmt.Fprintf(w, "\n%s / %s (equal optimiser steps):\n", ds.Name, method)
		tb.write(w)
		return nil
	}
	if err := run(mk("aminer-sim-hard", 8, 4.0, 21), train.GPFlash, sweepA, 21); err != nil {
		return err
	}
	if err := run(mk("pokec-sim-hard", 2, 5.0, 23), train.NodeFormerKernel, sweepB, 23); err != nil {
		return err
	}
	fmt.Fprintln(w, "expected shape: accuracy rises with sequence length on both datasets")
	return nil
}
