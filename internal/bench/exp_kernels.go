package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"torchgt/internal/attention"
	"torchgt/internal/dist"
	"torchgt/internal/graph"
	"torchgt/internal/partition"
	"torchgt/internal/sparse"
	"torchgt/internal/tensor"
)

func init() {
	register(&Experiment{ID: "fig2", Title: "Iteration time breakdown: attention dominates (Fig. 2)", Run: runFig2})
	register(&Experiment{ID: "table2", Title: "Irregular topology-pattern cost vs dense (Table II)", Run: runTable2})
	register(&Experiment{ID: "fig12", Title: "Attention kernel time vs S and hidden dim (Fig. 12)", Run: runFig12})
	register(&Experiment{ID: "fig5", Title: "Attention layouts: raw / clustered / cluster-sparse (Fig. 5)", Run: runFig5})
}

// kernelQKV builds random projections for a kernel timing run.
func kernelQKV(s, d int, seed int64) (q, k, v *tensor.Mat) {
	rng := rand.New(rand.NewSource(seed))
	q, k, v = tensor.New(s, d), tensor.New(s, d), tensor.New(s, d)
	tensor.RandN(q, rng, 0.5)
	tensor.RandN(k, rng, 0.5)
	tensor.RandN(v, rng, 0.5)
	return
}

// timeKernel measures forward+backward wall time of one kernel.
func timeKernel(kr attention.Kernel, q, k, v *tensor.Mat) time.Duration {
	t0 := time.Now()
	o := kr.Forward(q, k, v)
	dO := o.Clone()
	kr.Backward(dO)
	return time.Since(t0)
}

// runFig2 measures the share of iteration time spent in (flash) attention
// at increasing S, and the simulated 3090/A100 iteration split.
func runFig2(ctx context.Context, w io.Writer, scale Scale) error {
	sweep := []int{1024, 2048, 4096}
	if scale == ScaleSmoke {
		sweep = []int{256, 512}
	}
	d := 64
	shape := dist.ModelShape{Layers: 4, Hidden: d, Heads: 8, FFNHidden: 4 * d}
	tb := &table{header: []string{"S", "attn(ms)", "other(ms)", "attn share", "paper-S", "sim-3090 share", "sim-A100 share"}}
	for _, s := range sweep {
		q, k, v := kernelQKV(s, d/8, int64(s))
		attnPerHead := timeKernel(attention.NewFlash(false), q, k, v)
		attnTotal := time.Duration(int64(attnPerHead) * int64(shape.Heads) * int64(shape.Layers))
		// "other" ≈ the FFN+projection matmuls measured directly
		other := timeFFN(s, shape)
		share := float64(attnTotal) / float64(attnTotal+other)
		// the simulated share is evaluated at the paper's sequence lengths
		// (32K–256K), where the fixed per-step overhead no longer dominates
		paperS := s * 32
		simShare := func(hw dist.HardwareProfile) float64 {
			pm := &dist.PerfModel{HW: hw}
			c := pm.StepTime(dist.KindDense, int64(paperS)*int64(paperS), paperS, shape, 8)
			return float64(c.Attn) / float64(c.Total)
		}
		tb.addRow(fmt.Sprint(s),
			fmt.Sprint(attnTotal.Milliseconds()), fmt.Sprint(other.Milliseconds()),
			pct(share), fmt.Sprint(paperS), pct(simShare(dist.RTX3090)), pct(simShare(dist.A100)))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: attention share grows with S and dominates (>80% at the top of the sweep)")
	return nil
}

// timeFFN measures the non-attention matmuls of one iteration.
func timeFFN(s int, shape dist.ModelShape) time.Duration {
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(s, shape.Hidden)
	tensor.RandN(x, rng, 0.5)
	w1 := tensor.New(shape.Hidden, shape.FFNHidden)
	w2 := tensor.New(shape.FFNHidden, shape.Hidden)
	wq := tensor.New(shape.Hidden, shape.Hidden)
	tensor.RandN(w1, rng, 0.1)
	tensor.RandN(w2, rng, 0.1)
	tensor.RandN(wq, rng, 0.1)
	t0 := time.Now()
	for l := 0; l < shape.Layers; l++ {
		h := tensor.New(s, shape.FFNHidden)
		tensor.MatMul(h, x, w1)
		o := tensor.New(s, shape.Hidden)
		tensor.MatMul(o, h, w2)
		for p := 0; p < 4; p++ { // QKV+O projections
			tensor.MatMul(o, x, wq)
		}
	}
	// backward ≈ 2× forward
	return time.Since(t0) * 3
}

// runTable2 compares the per-pair backward cost of the raw topology pattern
// against dense attention, plus the simulated GPU wall-clock at paper-scale
// sequence lengths.
func runTable2(ctx context.Context, w io.Writer, scale Scale) error {
	sweep := []int{1024, 2048, 4096}
	if scale == ScaleSmoke {
		sweep = []int{512, 1024}
	}
	d := 8 // per-head dim of GPH-Slim
	tb := &table{header: []string{"S", "dense bw ns/pair", "topo bw ns/pair", "ratio", "sim-3090 topo/dense"}}
	for _, s := range sweep {
		rng := rand.New(rand.NewSource(int64(s)))
		g := graph.BarabasiAlbert(s, 8, rng)
		g = g.Permute(graph.ShuffledIDs(s, rng)) // unordered → irregular access
		p := sparse.FromGraph(g)
		q, k, v := kernelQKV(s, d, int64(s)+1)

		dense := attention.NewDense()
		o := dense.Forward(q, k, v)
		t0 := time.Now()
		dense.Backward(o)
		denseBW := time.Since(t0)

		sp := attention.NewSparse(p)
		o2 := sp.Forward(q, k, v)
		t0 = time.Now()
		sp.Backward(o2)
		topoBW := time.Since(t0)

		densePP := float64(denseBW.Nanoseconds()) / float64(s) / float64(s)
		topoPP := float64(topoBW.Nanoseconds()) / float64(p.NNZ())
		pm := &dist.PerfModel{HW: dist.RTX3090}
		simRatio := (float64(p.NNZ()) * pm.HW.IrregularSlow) / (float64(s) * float64(s))
		tb.addRow(fmt.Sprint(s), f3(densePP), f3(topoPP), f2(topoPP/densePP), f2(simRatio))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: per-pair topology-pattern cost ≫ per-pair dense cost (paper Table II: up to 33× wall-clock)")
	return nil
}

// runFig12 times the three attention kernels vs sequence length and hidden
// dimension.
func runFig12(ctx context.Context, w io.Writer, scale Scale) error {
	sweepS := []int{1024, 2048, 4096, 8192}
	sweepD := []int{16, 32, 64}
	fixedS := 4096
	if scale == ScaleSmoke {
		sweepS = []int{512, 1024}
		sweepD = []int{16, 32}
		fixedS = 1024
	}
	build := func(s int) (*sparse.Pattern, *sparse.Reformed) {
		rng := rand.New(rand.NewSource(int64(s) * 7))
		nb := s / 128
		if nb < 2 {
			nb = 2
		}
		sizes := make([]int, nb)
		for i := range sizes {
			sizes[i] = s / nb
		}
		g, _ := graph.SBM(graph.SBMConfig{BlockSizes: sizes, AvgDegIn: 12, AvgDegOut: 2}, rng)
		g = g.Permute(graph.ShuffledIDs(g.N, rng))
		part := partition.Partition(g, 8, 3)
		perm, bounds := partition.ClusterOrder(part, 8)
		g = g.Permute(perm)
		p := sparse.FromGraph(g)
		cl, err := sparse.NewClusterLayout(p, bounds)
		if err != nil {
			panic(err)
		}
		return p, sparse.ReformIndolent(cl, 16)
	}
	fmt.Fprintln(w, "(a) time vs sequence length, d=32:")
	tb := &table{header: []string{"S", "flash(ms)", "sparse(ms)", "cluster-sparse(ms)"}}
	for _, s := range sweepS {
		p, r := build(s)
		q, k, v := kernelQKV(s, 32, int64(s)+3)
		tf := timeKernel(attention.NewFlash(false), q, k, v)
		ts := timeKernel(attention.NewSparse(p), q, k, v)
		tc := timeKernel(attention.NewClusterSparse(r), q, k, v)
		tb.addRow(fmt.Sprint(s), fmt.Sprintf("%.1f", ms(tf)), fmt.Sprintf("%.1f", ms(ts)), fmt.Sprintf("%.1f", ms(tc)))
	}
	tb.write(w)

	fmt.Fprintf(w, "\n(b) time vs hidden dim, S=%d:\n", fixedS)
	tb2 := &table{header: []string{"d", "flash(ms)", "sparse(ms)", "cluster-sparse(ms)"}}
	p, r := build(fixedS)
	for _, d := range sweepD {
		q, k, v := kernelQKV(fixedS, d, int64(d)+5)
		tf := timeKernel(attention.NewFlash(false), q, k, v)
		ts := timeKernel(attention.NewSparse(p), q, k, v)
		tc := timeKernel(attention.NewClusterSparse(r), q, k, v)
		tb2.addRow(fmt.Sprint(d), fmt.Sprintf("%.1f", ms(tf)), fmt.Sprintf("%.1f", ms(ts)), fmt.Sprintf("%.1f", ms(tc)))
	}
	tb2.write(w)
	fmt.Fprintln(w, "expected shape: flash grows quadratically with S; sparse/cluster-sparse stay near-linear and win at long S")
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// runFig5 prints layout statistics for the three stages of Fig. 5.
func runFig5(ctx context.Context, w io.Writer, scale Scale) error {
	s := 4096
	if scale == ScaleSmoke {
		s = 1024
	}
	rng := rand.New(rand.NewSource(41))
	nb := s / 128
	sizes := make([]int, nb)
	for i := range sizes {
		sizes[i] = s / nb
	}
	g, _ := graph.SBM(graph.SBMConfig{BlockSizes: sizes, AvgDegIn: 14, AvgDegOut: 2}, rng)
	g = g.Permute(graph.ShuffledIDs(g.N, rng))
	k := 8
	evenBounds := make([]int32, k+1)
	for i := range evenBounds {
		evenBounds[i] = int32(i * s / k)
	}
	raw := sparse.FromGraph(g)
	rawCL, err := sparse.NewClusterLayout(raw, evenBounds)
	if err != nil {
		return err
	}
	part := partition.Partition(g, k, 5)
	perm, bounds := partition.ClusterOrder(part, k)
	re := g.Permute(perm)
	cluster := sparse.FromGraph(re)
	clCL, err := sparse.NewClusterLayout(cluster, bounds)
	if err != nil {
		return err
	}
	reformed := sparse.ReformIndolent(clCL, 16)
	// Kernel step time per layout, at β=0 so every layout computes the same
	// CSR entry set: the column isolates the K/V gather locality the cluster
	// reordering buys (contiguous cluster windows vs the whole sequence).
	q, kq, vq := kernelQKV(s, 64, 43)
	stepRaw := timeKernel(attention.NewClusterSparse(sparse.Reform(rawCL, 16, 0)), q, kq, vq)
	stepCl := timeKernel(attention.NewClusterSparse(sparse.Reform(clCL, 16, 0)), q, kq, vq)
	stepRe := timeKernel(attention.NewClusterSparse(reformed), q, kq, vq)
	tb := &table{header: []string{"layout", "β (sparsity)", "diag NNZ frac", "sub-blocks", "CS step(ms)"}}
	tb.addRow("(a) original sparse", fmt.Sprintf("%.5f", raw.Sparsity()), pct(rawCL.DiagonalNNZFraction()), "-",
		fmt.Sprintf("%.1f", ms(stepRaw)))
	tb.addRow("(b) clustered", fmt.Sprintf("%.5f", cluster.Sparsity()), pct(clCL.DiagonalNNZFraction()), "-",
		fmt.Sprintf("%.1f", ms(stepCl)))
	tb.addRow("(c) cluster-sparse", fmt.Sprintf("%.5f", reformed.EffectivePattern().Sparsity()),
		pct(clCL.DiagonalNNZFraction()), fmt.Sprintf("%d (of %d clusters, %d transferred)",
			len(reformed.Blocks), reformed.Clusters, reformed.Transferred),
		fmt.Sprintf("%.1f", ms(stepRe)))
	tb.write(w)
	fmt.Fprintf(w, "reordered vs unordered cluster-sparse step: %.2fx\n", float64(stepRaw)/float64(stepCl))
	fmt.Fprintln(w, "expected shape: clustering concentrates NNZ on the diagonal; reformation compacts the sparse remainder into sub-blocks")
	return nil
}
