package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table5", "table6", "table7", "table8",
		"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b",
		"fig10", "fig11", "fig12", "preproc", "dist", "workspace", "serve", "seqpar",
		"ablation-interleave", "ablation-reorder", "ablation-db", "ablation-sampling", "ablation-bigbird",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

// Each experiment must run to completion at smoke scale and produce output.
// Heavier ones are exercised individually so failures are attributable.
func smokeRun(t *testing.T, id string) string {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("missing experiment %s", id)
	}
	var buf bytes.Buffer
	if err := e.Run(context.Background(), &buf, ScaleSmoke); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) < 40 {
		t.Fatalf("%s produced no meaningful output: %q", id, out)
	}
	return out
}

func TestSmokeFig5(t *testing.T) {
	out := smokeRun(t, "fig5")
	if !strings.Contains(out, "cluster-sparse") {
		t.Fatal("fig5 output incomplete")
	}
}

func TestSmokeFig6(t *testing.T) {
	out := smokeRun(t, "fig6")
	if !strings.Contains(out, "rtx3090") || !strings.Contains(out, "a100") {
		t.Fatal("fig6 must cover both GPU specs")
	}
}

func TestSmokeFig7(t *testing.T) { smokeRun(t, "fig7") }

func TestSmokeFig9a(t *testing.T) {
	out := smokeRun(t, "fig9a")
	if !strings.Contains(out, "gp-raw") {
		t.Fatal("fig9a output incomplete")
	}
}

func TestSmokeFig9b(t *testing.T) { smokeRun(t, "fig9b") }

func TestSmokeTable2(t *testing.T) { smokeRun(t, "table2") }

func TestSmokeFig2(t *testing.T) { smokeRun(t, "fig2") }

func TestSmokeFig12(t *testing.T) { smokeRun(t, "fig12") }

func TestSmokeDist(t *testing.T) {
	out := smokeRun(t, "dist")
	if !strings.Contains(out, "measured comm volume") {
		t.Fatal("dist output incomplete")
	}
}

// TestSmokeSeqPar pins the sequence-parallel experiment's contract: rows for
// P ∈ {1, 2, 4} with identical loss (the experiment itself fails on any
// trajectory divergence) plus measured-vs-modelled comm columns.
func TestSmokeSeqPar(t *testing.T) {
	skipIfShort(t)
	out := smokeRun(t, "seqpar")
	if !strings.Contains(out, "model reshard MB") || !strings.Contains(out, "bitwise") {
		t.Fatal("seqpar output incomplete")
	}
	if !strings.Contains(out, "tcp-loopback P=4") || !strings.Contains(out, "loopback-model step") {
		t.Fatal("seqpar missing the cross-process predicted-vs-measured row")
	}
}

func TestSmokePreproc(t *testing.T) {
	skipIfShort(t)
	smokeRun(t, "preproc")
}

func TestSmokeWorkspace(t *testing.T) {
	skipIfShort(t)
	out := smokeRun(t, "workspace")
	if !strings.Contains(out, "alloc reduction") || !strings.Contains(out, "head-parallel, pooled") {
		t.Fatal("workspace output incomplete")
	}
}

func TestSmokeTable8(t *testing.T) {
	skipIfShort(t)
	smokeRun(t, "table8")
}

// TestSmokeServe pins the serving experiment's contract: a report covering
// at least three offered loads with latency percentiles and throughput.
func TestSmokeServe(t *testing.T) {
	out := smokeRun(t, "serve")
	for _, want := range []string{"0.25x", "1.00x", "2.00x", "p50 ms", "p99 ms", "saturation throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("serve report missing %q:\n%s", want, out)
		}
	}
}

// skipIfShort gates slow convergence/end-to-end experiments out of the
// default CI test lane; the full (non-blocking) lane runs them.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("slow end-to-end experiment skipped with -short")
	}
}

func TestSmokeTable6(t *testing.T) { smokeRun(t, "table6") }

func TestSmokeAblationReorder(t *testing.T) {
	out := smokeRun(t, "ablation-reorder")
	if !strings.Contains(out, "cluster-reordered") {
		t.Fatal("ablation-reorder output incomplete")
	}
}

func TestSmokeAblationDb(t *testing.T) { smokeRun(t, "ablation-db") }

func TestTableFormatting(t *testing.T) {
	tb := &table{header: []string{"a", "bbbb"}}
	tb.addRow("xxxxx", "y")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
}
