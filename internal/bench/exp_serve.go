package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"torchgt/internal/model"
	"torchgt/internal/serve"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{
		ID:    "serve",
		Title: "Batched inference serving: latency/throughput vs offered load",
		Run:   runServe,
	})
}

// runServe trains a model, freezes it and drives the serving engine with an
// open-loop arrival process at several offered loads: fractions of the
// engine's measured saturation throughput, so the experiment reports the
// same shape (latency flat until the knee, then queueing growth while
// batches widen toward MaxBatch) on any machine. The paper's thesis at serve
// time: dynamic batching keeps the attention kernels saturated with work.
func runServe(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs, dur := 2048, 6, 2*time.Second
	if scale == ScaleSmoke {
		nodes, epochs, dur = 384, 2, 300*time.Millisecond
	}
	ds, err := loadNode("arxiv-sim", nodes, 71)
	if err != nil {
		return err
	}
	cfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 72)
	tr := train.NewNodeTrainer(train.NodeConfig{
		Method: train.TorchGT, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 73,
	}, cfg, ds)
	res, err := tr.RunCtx(ctx)
	if err != nil {
		return err
	}
	snap, err := serve.Freeze(tr.Model)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(snap, ds, serve.Options{
		Workers: 2, MaxBatch: 16, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	o := srv.Options()
	fmt.Fprintf(w, "model %s (test acc %.1f%%), %d-node graph; server: %d workers, batch≤%d, deadline %s, %s kernel\n",
		cfg.Name, res.FinalTestAcc*100, ds.G.N, o.Workers, o.MaxBatch, o.MaxDelay, o.Mode)

	targets := make([]int32, 256)
	for i := range targets {
		targets[i] = int32((i * 31) % ds.G.N)
	}

	// Saturation probe: closed-loop full batches measure the kernel-bound
	// ceiling the open-loop sweep is scaled against.
	srv.PredictBatch(targets[:o.MaxBatch]) // warm-up
	probeStart := time.Now()
	probed := 0
	for time.Since(probeStart) < dur/2 {
		srv.PredictBatch(targets[probed%128 : probed%128+o.MaxBatch])
		probed += o.MaxBatch
	}
	capacity := float64(probed) / time.Since(probeStart).Seconds()
	fmt.Fprintf(w, "saturation throughput (closed loop, full batches): %.0f req/s\n\n", capacity)

	tb := &table{header: []string{"offered req/s", "achieved req/s", "p50 ms", "p99 ms", "avg batch", "errors"}}
	for _, frac := range []float64{0.25, 0.5, 1.0, 2.0} {
		lp := serve.RunLoad(srv, targets, frac*capacity, dur)
		tb.addRow(
			fmt.Sprintf("%.0f (%.2fx)", lp.OfferedRPS, frac),
			f1(lp.AchievedRPS),
			f3(float64(lp.P50.Microseconds())/1000),
			f3(float64(lp.P99.Microseconds())/1000),
			f1(lp.AvgBatch),
			fmt.Sprintf("%d", lp.Errors),
		)
	}
	tb.write(w)
	st := srv.Stats()
	fmt.Fprintf(w, "\ntotals: %d requests in %d batches (avg %.1f); %d full flushes, %d deadline flushes\n",
		st.Requests, st.Batches, st.AvgBatchSize, st.FlushFull, st.FlushDeadline)
	fmt.Fprintln(w, "expected shape: latency stays near the deadline below the knee; past saturation queueing dominates and batches widen to MaxBatch")

	// Packed-vs-unpacked flush: the same engine with MaxBatch=1 issues one
	// attention call per request (the pre-packing behaviour); the packed
	// scheduler coalesces a flush into one block-diagonal forward. Same
	// offered load on both, so p50/p99 isolate the per-call overhead the
	// packer removes.
	unpacked, err := serve.NewServer(snap, ds, serve.Options{
		Workers: 2, MaxBatch: 1, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer unpacked.Close()
	unpacked.PredictBatch(targets[:1]) // warm-up
	load := 2 * capacity               // past the knee, where flushes actually coalesce
	fmt.Fprintf(w, "\npacked vs unpacked flush at %.0f req/s offered:\n", load)
	tb2 := &table{header: []string{"scheduler", "achieved req/s", "p50 ms", "p99 ms", "avg batch"}}
	for _, sc := range []struct {
		label string
		s     *serve.Server
	}{
		{"unpacked (MaxBatch=1)", unpacked},
		{fmt.Sprintf("packed (MaxBatch=%d)", o.MaxBatch), srv},
	} {
		lp := serve.RunLoad(sc.s, targets, load, dur)
		tb2.addRow(sc.label, f1(lp.AchievedRPS),
			f3(float64(lp.P50.Microseconds())/1000),
			f3(float64(lp.P99.Microseconds())/1000),
			f1(lp.AvgBatch))
	}
	tb2.write(w)
	fmt.Fprintln(w, "expected shape: one forward per request saturates well below the packed scheduler; packing sustains more throughput at lower p50/p99")
	return nil
}
