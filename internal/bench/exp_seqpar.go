package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"torchgt/internal/dist"
	"torchgt/internal/dist/transport"
	"torchgt/internal/model"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{
		ID:    "seqpar",
		Title: "Sequence-parallel execution plan: step time + comm volume vs P, against the perf model",
		Run:   runSeqPar,
	})
}

// runSeqPar trains the same node task under the sequence-parallel plan at
// P ∈ {1, 2, 4} and reports, per P: measured optimiser-step time, measured
// collective traffic per step (resharding all-to-alls + gradient sync), the
// analytic reshard volume the Ulysses schedule predicts, and the RTX3090
// perf model's predicted step time at the same shape. Every run trains
// bitwise-identically (the plan guarantee), so the rows differ only in
// execution, not numerics — the final loss column demonstrates it.
func runSeqPar(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 1024, 4
	if scale == ScaleSmoke {
		nodes, epochs = 256, 2
	}
	ds, err := loadNode("arxiv-sim", nodes, 61)
	if err != nil {
		return err
	}
	mcfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 62)
	shape := dist.ModelShape{Layers: mcfg.Layers, Hidden: mcfg.Hidden, Heads: mcfg.Heads, FFNHidden: mcfg.FFNHidden}
	pm := &dist.PerfModel{HW: dist.RTX3090}

	tb := &table{header: []string{"P", "loss", "step(s)", "comm/step MB", "model reshard MB", "model step(s)"}}
	var firstLoss float64
	var serialPairsPerHead int64
	for _, p := range []int{1, 2, 4} {
		if err := ctx.Err(); err != nil {
			return err
		}
		tr := train.NewNodeTrainer(train.NodeConfig{
			Method: train.GPSparse, Epochs: epochs, LR: 1e-3, Seed: 63, SeqParallel: p,
		}, mcfg, ds)
		// Sample comm counters at epoch events so the per-step figure covers
		// exactly one optimiser step (the node task runs one per epoch) and
		// excludes the final clean-evaluation forward after the last epoch.
		var marks []int64
		if sp := model.AsSeqParallel(tr.Model.Plan()); sp != nil {
			tr.Loop().Sink = func(e train.Event) {
				if _, ok := e.(train.EpochEvent); ok {
					marks = append(marks, sp.Comm().TotalBytes())
				}
			}
		}
		t0 := time.Now()
		res, err := tr.RunCtx(ctx)
		if err != nil {
			return err
		}
		stepSec := time.Since(t0).Seconds() / float64(epochs)

		var commPerStep float64
		switch {
		case len(marks) >= 2:
			commPerStep = float64(marks[len(marks)-1] - marks[len(marks)-2])
		case len(marks) == 1:
			commPerStep = float64(marks[0])
		}
		// The Ulysses schedule: 8 all-to-alls per layer per fwd+bwd step,
		// each moving (S/P)·H·4 bytes per rank with (P−1)/P off-rank.
		var reshard float64
		if p > 1 {
			reshard = float64(p) * 8 * float64(shape.Layers) *
				float64(nodes) / float64(p) * float64(shape.Hidden) * 4 * float64(p-1) / float64(p)
		}
		pairsPerHead := res.TotalPairs / int64(epochs) / int64(shape.Heads) / int64(shape.Layers)
		cost := pm.StepTime(dist.KindSparse, pairsPerHead, nodes, shape, p)

		loss := res.Curve[len(res.Curve)-1].Loss
		if p == 1 {
			firstLoss = loss
			serialPairsPerHead = pairsPerHead
		} else if loss != firstLoss {
			return fmt.Errorf("seqpar: P=%d trajectory diverged from serial (loss %v vs %v)", p, loss, firstLoss)
		}
		tb.addRow(fmt.Sprint(p), fmt.Sprintf("%.6f", loss), f3(stepSec),
			fmt.Sprintf("%.2f", commPerStep/(1<<20)), fmt.Sprintf("%.2f", reshard/(1<<20)),
			f3(cost.Total.Seconds()))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: identical loss at every P (bitwise trajectory); measured comm/step tracks the")
	fmt.Fprintln(w, "model's O(S/P)-per-rank reshard volume plus the gradient all-gather; model step time falls ~1/P")

	// The same task once more at P=4 — this time as four ranks of the
	// cross-process plan exchanging collectives over real TCP on the
	// loopback interface — against the Loopback profile's prediction
	// (which adds the per-collective wire latency the in-process rows
	// never pay). The trajectory must still be bitwise the serial one.
	const tcpWorld = 4
	stepSec, res, err := runSeqParTCP(ctx, tcpWorld, nodes, epochs)
	if err != nil {
		return err
	}
	loss := res.Curve[len(res.Curve)-1].Loss
	if loss != firstLoss {
		return fmt.Errorf("seqpar: tcp-loopback P=%d trajectory diverged from serial (loss %v vs %v)", tcpWorld, loss, firstLoss)
	}
	cost := (&dist.PerfModel{HW: dist.Loopback}).StepTime(dist.KindSparse, serialPairsPerHead, nodes, shape, tcpWorld)
	fmt.Fprintf(w, "tcp-loopback P=%d: loss %.6f (bitwise-equal to serial), measured step %ss, loopback-model step %ss\n",
		tcpWorld, loss, f3(stepSec), f3(cost.Total.Seconds()))
	return nil
}

// runSeqParTCP trains the node task as `world` real TCP-loopback ranks — one
// goroutine per rank, each with its own transport endpoint and dataset copy —
// and returns the measured per-step wall time plus rank 0's result.
// Transports close only after every rank has finished: a rank tearing down
// early would discard frames its peers have not yet consumed.
func runSeqParTCP(ctx context.Context, world, nodes, epochs int) (float64, *train.Result, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, nil, err
	}
	addr := l.Addr().String()
	l.Close()

	results := make([]*train.Result, world)
	errs := make([]error, world)
	ts := make([]transport.Transport, world)
	elapsed := make([]time.Duration, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := transport.Join(ctx, addr, r, world, transport.Options{Fingerprint: "bench-seqpar"})
			if err != nil {
				errs[r] = err
				return
			}
			ts[r] = tr
			ds, err := loadNode("arxiv-sim", nodes, 61)
			if err != nil {
				errs[r] = err
				return
			}
			mcfg := model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 62)
			nt := train.NewNodeTrainer(train.NodeConfig{
				Method: train.GPSparse, Epochs: epochs, LR: 1e-3, Seed: 63,
			}, mcfg, ds)
			plan, err := model.NewDistSeqParallel(tr, 1, model.ExecOptions{PoolEnabled: true})
			if err != nil {
				errs[r] = err
				return
			}
			nt.Model.SetPlan(plan)
			// Time the run only, on the far side of a barrier, so the
			// measurement matches the in-process rows: setup (rendezvous,
			// dataset load, preprocessing) stays outside the clock.
			if err := tr.Barrier(); err != nil {
				errs[r] = err
				return
			}
			t0 := time.Now()
			res, err := nt.RunCtx(ctx)
			elapsed[r] = time.Since(t0)
			if err != nil {
				errs[r] = err
				return
			}
			// Drain before teardown: reaching the barrier implies every
			// peer has consumed this rank's final collective frames.
			if err := tr.Barrier(); err != nil {
				errs[r] = err
				return
			}
			results[r] = res
		}(r)
	}
	wg.Wait()
	for _, tr := range ts {
		if tr != nil {
			tr.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("seqpar: tcp rank %d: %w", r, err)
		}
	}
	return elapsed[0].Seconds() / float64(epochs), results[0], nil
}
