package bench

import "testing"

func TestLoadNodeOverride(t *testing.T) {
	defer SetNodeDataSpec("")

	SetNodeDataSpec("synth://arxiv-sim?nodes=256&seed=1")
	ds, err := loadNode("products-sim", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "arxiv-sim" || ds.G.N != 128 {
		t.Fatalf("override not applied: %q with %d nodes", ds.Name, ds.G.N)
	}
	full, err := loadNode("products-sim", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if full.G.N != 256 {
		t.Fatalf("unsubsampled override has %d nodes", full.G.N)
	}

	SetNodeDataSpec("")
	ds2, err := loadNode("products-sim", 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Name != "products-sim" {
		t.Fatalf("override not cleared: %q", ds2.Name)
	}

	SetNodeDataSpec("synth://zinc-sim")
	if _, err := loadNode("arxiv-sim", 64, 1); err == nil {
		t.Fatal("graph-level override must error")
	}
	SetNodeDataSpec("synth://no-such")
	if _, err := loadNode("arxiv-sim", 64, 1); err == nil {
		t.Fatal("unresolvable override must error")
	}
}
