package bench

import (
	"context"
	"fmt"
	"io"

	"torchgt/internal/graph"
	"torchgt/internal/model"
	"torchgt/internal/train"
)

func init() {
	register(&Experiment{ID: "fig8", Title: "Convergence: TorchGT vs GP-Flash (Fig. 8)", Run: runFig8})
	register(&Experiment{ID: "fig10", Title: "Convergence of attention variants on large graphs (Fig. 10)", Run: runFig10})
	register(&Experiment{ID: "fig11", Title: "Convergence of attention variants on small graphs (Fig. 11)", Run: runFig11})
}

// curveTable prints accuracy vs cumulative wall-clock for several runs.
func curveTable(w io.Writer, labels []string, results []*train.Result, every int) {
	tb := &table{header: append([]string{"epoch"}, twoCols(labels)...)}
	n := 0
	for _, r := range results {
		if len(r.Curve) > n {
			n = len(r.Curve)
		}
	}
	for ep := 0; ep < n; ep += every {
		row := []string{fmt.Sprint(ep)}
		for _, r := range results {
			if ep < len(r.Curve) {
				var cum float64
				for _, p := range r.Curve[:ep+1] {
					cum += p.EpochTime.Seconds()
				}
				row = append(row, f2(cum), pct(r.Curve[ep].TestAcc))
			} else {
				row = append(row, "-", "-")
			}
		}
		tb.addRow(row...)
	}
	tb.write(w)
}

func twoCols(labels []string) []string {
	var out []string
	for _, l := range labels {
		out = append(out, l+" t(s)", l+" acc")
	}
	return out
}

func runFig8(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 20
	if scale == ScaleSmoke {
		nodes, epochs = 512, 6
	}
	cases := []struct {
		ds    string
		model string
	}{
		{"arxiv-sim", "gph-slim"},
		{"products-sim", "gt"},
	}
	if scale == ScaleSmoke {
		cases = cases[:1]
	}
	for _, cse := range cases {
		ds, err := loadNode(cse.ds, nodes, 51)
		if err != nil {
			return err
		}
		var cfg model.Config
		if cse.model == "gt" {
			cfg = model.GTConfig(ds.X.Cols, ds.NumClasses, 52)
		} else {
			cfg = model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 52)
		}
		var results []*train.Result
		for _, m := range []train.Method{train.TorchGT, train.GPFlash} {
			tr := train.NewNodeTrainer(train.NodeConfig{
				Method: m, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 53,
			}, cfg, ds)
			res, err := tr.RunCtx(ctx)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		fmt.Fprintf(w, "\n%s / %s (accuracy vs cumulative time):\n", cse.model, cse.ds)
		curveTable(w, []string{"torchgt", "gp-flash"}, results, 2)
	}
	fmt.Fprintln(w, "expected shape: torchgt reaches the same-or-better accuracy in much less wall-clock time")
	return nil
}

func runFig10(ctx context.Context, w io.Writer, scale Scale) error {
	nodes, epochs := 2048, 20
	if scale == ScaleSmoke {
		nodes, epochs = 512, 6
	}
	ds, err := loadNode("arxiv-sim", nodes, 55)
	if err != nil {
		return err
	}
	for _, mname := range []string{"gph-slim", "gt"} {
		var cfg model.Config
		if mname == "gt" {
			cfg = model.GTConfig(ds.X.Cols, ds.NumClasses, 56)
		} else {
			cfg = model.GraphormerSlim(ds.X.Cols, ds.NumClasses, 56)
		}
		var results []*train.Result
		for _, m := range []train.Method{train.TorchGT, train.GPFlash, train.GPSparse} {
			tr := train.NewNodeTrainer(train.NodeConfig{
				Method: m, Epochs: epochs, LR: 2e-3, FixedBeta: -1, Seed: 57,
			}, cfg, ds)
			res, err := tr.RunCtx(ctx)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		fmt.Fprintf(w, "\n%s / arxiv-sim:\n", mname)
		curveTable(w, []string{"interleaved", "flash", "sparse"}, results, 2)
		fmt.Fprintf(w, "final acc: interleaved=%s flash=%s sparse=%s\n",
			pct(results[0].FinalTestAcc), pct(results[1].FinalTestAcc), pct(results[2].FinalTestAcc))
	}
	fmt.Fprintln(w, "expected shape: interleaved attention converges to ≥ sparse accuracy and reaches it faster than flash in wall-clock")
	return nil
}

func runFig11(ctx context.Context, w io.Writer, scale Scale) error {
	graphs, epochs := 200, 12
	if scale == ScaleSmoke {
		graphs, epochs = 60, 5
	}
	zinc := graph.MakeGraphDataset(graph.GraphDatasetConfig{
		Name: "zinc-sim", Task: graph.GraphRegression, NumGraphs: graphs,
		MinNodes: 12, MaxNodes: 30, FeatDim: 16, Seed: 59,
	})
	tb := &table{header: []string{"attention", "final test MAE↓", "train loss (last)"}}
	for _, mc := range []struct {
		label  string
		method train.Method
	}{
		{"interleaved", train.TorchGT},
		{"full", train.GPRaw},
		{"sparse", train.GPSparse},
	} {
		cfg := model.GraphormerSlim(16, 1, 60)
		tr := train.NewGraphTrainer(train.GraphConfig{
			Method: mc.method, Epochs: epochs, LR: 2e-3, BatchSize: 8, Seed: 61,
		}, cfg, zinc)
		res, err := tr.RunCtx(ctx)
		if err != nil {
			return err
		}
		tb.addRow(mc.label, f3(tr.EvalMAE()), f3(res.Curve[len(res.Curve)-1].Loss))
	}
	tb.write(w)
	fmt.Fprintln(w, "expected shape: interleaved ≈ full attention quality; pure sparse trails both")
	return nil
}
