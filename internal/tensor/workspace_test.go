package tensor

import (
	"sync"
	"testing"
)

func TestWorkspaceGetShapesAndZeroing(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("bad shape %v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Get must zero the buffer")
		}
	}
	m.Fill(7)
	ws.Reset()
	// same bucket → same backing slab, and it must be re-zeroed
	m2 := ws.Get(3, 5)
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("recycled buffer must be re-zeroed")
		}
	}
}

func TestWorkspaceReusesAfterReset(t *testing.T) {
	ws := NewWorkspace()
	// park a deterministic buffer in the pool, then measure reuse
	ws.Get(64, 64)
	ws.Reset()
	for i := 0; i < 8; i++ {
		ws.Get(64, 64)
		ws.Reset()
	}
	st := ws.Stats()
	if st.Gets != 9 {
		t.Fatalf("gets=%d", st.Gets)
	}
	// most gets after the first are pool hits (the exact count varies: the
	// race detector deliberately drops a fraction of sync.Pool puts)
	if st.PoolHits < 3 {
		t.Fatalf("expected ≥3 pool hits, got %d", st.PoolHits)
	}
	if st.InUse != 0 {
		t.Fatalf("in-use after reset: %d", st.InUse)
	}
}

func TestWorkspacePutReturnsEarly(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(8, 8)
	b := ws.Get(4, 4)
	ws.Put(a)
	st := ws.Stats()
	if st.InUse != 1 {
		t.Fatalf("in-use=%d after Put", st.InUse)
	}
	// putting a foreign matrix is a no-op
	ws.Put(New(2, 2))
	if ws.Stats().InUse != 1 {
		t.Fatal("foreign Put must not change held set")
	}
	ws.Put(b)
	if ws.Stats().InUse != 0 {
		t.Fatal("held set must drain")
	}
}

func TestNilWorkspaceFallsBack(t *testing.T) {
	var ws *Workspace
	m := ws.Get(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatal("nil workspace must heap-allocate")
	}
	v := ws.GetVec(4)
	if len(v) != 4 {
		t.Fatal("nil GetVec must heap-allocate")
	}
	ws.Put(m)  // no-op
	ws.Reset() // no-op
	if ws.Stats() != (WorkspaceStats{}) {
		t.Fatal("nil stats must be zero")
	}
}

func TestWorkspaceConcurrentGet(t *testing.T) {
	ws := NewWorkspace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m := ws.Get(16, 16)
				m.Fill(float32(g))
				v := ws.GetVec(33)
				v[0] = float32(g)
			}
		}(g)
	}
	wg.Wait()
	if got := ws.Stats().InUse; got != 8*50*2 {
		t.Fatalf("in-use=%d", got)
	}
	ws.Reset()
}

func TestBucketFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Fatalf("bucketFor(%d)=%d want %d", n, got, want)
		}
	}
}

func TestParallelForWorkerCoversRange(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	seen := make([]int32, 100)
	var mu sync.Mutex
	maxWorker := 0
	ParallelForWorker(100, func(worker, lo, hi int) {
		mu.Lock()
		if worker > maxWorker {
			maxWorker = worker
		}
		mu.Unlock()
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
	if maxWorker >= WorkerCount(100) {
		t.Fatalf("worker id %d out of range %d", maxWorker, WorkerCount(100))
	}
}
