// Package tensor provides dense float32 matrices and goroutine-parallel
// blocked kernels. It is the compute substrate standing in for the
// PyTorch/CUDA tensor library that the TorchGT paper builds on: matrices are
// row-major, kernels are cache-blocked and parallelised over a shared worker
// pool, and all higher layers (nn, attention, model) are written against it.
package tensor

import (
	"fmt"
	"math"
)

// Mat is a dense row-major float32 matrix. The zero value is an empty matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zero-initialised rows×cols matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data len %d != %d*%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns the i-th row as a slice sharing m's storage.
func (m *Mat) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Zero resets all elements to 0 in place.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (m *Mat) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; shapes must match.
func (m *Mat) CopyFrom(src *Mat) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

// SameShape reports whether m and o have identical dimensions.
func (m *Mat) SameShape(o *Mat) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Mat) mustSameShape(o *Mat) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// T returns a newly allocated transpose of m.
func (m *Mat) T() *Mat {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// SliceRows returns a view of rows [lo, hi) sharing m's storage.
func (m *Mat) SliceRows(lo, hi int) *Mat {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: bad row slice [%d,%d) of %d", lo, hi, m.Rows))
	}
	return &Mat{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Norm returns the Frobenius norm of m.
func (m *Mat) Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value.
func (m *Mat) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Equal reports element-wise equality within tol.
func (m *Mat) Equal(o *Mat, tol float32) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		d := v - o.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// Bytes returns the storage footprint of the matrix in bytes (float32).
func (m *Mat) Bytes() int64 { return int64(m.Rows) * int64(m.Cols) * 4 }

func (m *Mat) String() string {
	return fmt.Sprintf("Mat(%dx%d)", m.Rows, m.Cols)
}
