package tensor

import "math"

// Canonical GELU math (tanh approximation, as used by Graphormer's FFN).
// This is the single source of truth for the activation: nn.GELU and the
// reference backend's fused BiasGELU both evaluate these float64 forms, which
// keeps the fused and unfused paths bitwise identical.

const geluC = 0.7978845608028654 // sqrt(2/π)

// GELU evaluates 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³))).
func GELU(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

// GELUGrad evaluates d/dx of GELU.
func GELUGrad(x float64) float64 {
	inner := geluC * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dInner := geluC * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dInner
}
