package tensor

import "math"

// Fast float32 transcendentals for the optimized backend. Pure functions of
// their inputs — no table lookups, no mutable state — so results are exactly
// reproducible across runs and worker counts (the backend's
// self-determinism contract). Accuracy is traded against the float64
// math.Exp/math.Tanh reference: relative error stays below ~3e-7 for exp and
// ~1e-6 for tanh/GELU across the ranges attention and FFN activations
// produce, comfortably inside the optimized backend's stated 1e-4 kernel
// tolerance.

const (
	log2e = 1.4426950408889634
	// Cody–Waite split of ln 2: the high part carries only 10 mantissa bits
	// (710/1024), so n·ln2Hi is exact in float32 for every |n| ≤ 127 and the
	// range reduction cancels without error.
	ln2Hi   = 0.693359375
	ln2Lo   = -2.12194440e-4
	expMaxF = 89.0   // beyond this float32 exp surely overflows
	expMinF = -87.33 // below this the float32 result is subnormal
)

// expf32 computes e^x in float32: range reduction x = n·ln2 + r with
// |r| ≤ ln2/2, a degree-5 minimax-style polynomial for e^r, then a scalbn by
// bit surgery on the exponent field. Clamps at the float32 boundaries:
// overflow to +Inf above 88, flush to zero below −87.33 — results there
// would be subnormal (< 2⁻¹²⁶ ≈ 1.2e-38), far beneath anything a shifted
// softmax term contributes, and flushing keeps the scalbn exponent strictly
// normal.
func expf32(x float32) float32 {
	if x != x { // NaN
		return x
	}
	if x > expMaxF {
		return float32(math.Inf(1))
	}
	if x < expMinF {
		return 0
	}
	// n = round(x / ln2)
	fn := x*log2e + 0.5
	if x < 0 {
		fn = x*log2e - 0.5
	}
	n := int32(fn)
	// r = x - n·ln2 in two parts to keep r accurate.
	r := x - float32(n)*ln2Hi
	r -= float32(n) * ln2Lo
	// e^r ≈ 1 + r + r²·P(r) for |r| ≤ ln2/2, with the classic single-
	// precision minimax coefficients (rel err ~1e-7, versus ~2e-6 for the
	// same-degree Taylor truncation at the reduction boundary).
	r2 := r * r
	q := ((((1.9875691500e-4*r+1.3981999507e-3)*r+8.3334519073e-3)*r+
		4.1665795894e-2)*r+1.6666665459e-1)*r + 5.0000001201e-1
	p := 1 + r + r2*q
	// p · 2^n via exponent-field construction. The clamps above keep
	// n ∈ [−126, 128]; n = 128 straddles the overflow boundary (the result
	// is finite iff p < MaxFloat32/2¹²⁸), so that case scales in two exact
	// 2⁶⁴ steps and lets float32 rounding decide between finite and +Inf.
	e := n + 127
	if e >= 255 {
		return p * math.Float32frombits(uint32(e-64)<<23) * math.Float32frombits(uint32(64+127)<<23)
	}
	return p * math.Float32frombits(uint32(e)<<23)
}

// tanhf32 computes tanh(t) via e^{2t}: tanh(t) = 1 − 2/(e^{2t}+1), with the
// sign folded out so the exponential argument is non-positive (best accuracy
// region of expf32) and symmetric inputs give exactly symmetric outputs.
func tanhf32(t float32) float32 {
	if t != t {
		return t
	}
	neg := t < 0
	if neg {
		t = -t
	}
	var y float32
	if t > 10 { // tanh saturates: 1 - 2e^{-2t} < ulp away from 1
		y = 1
	} else {
		e := expf32(-2 * t)
		y = 1 - 2*e/(1+e)
	}
	if neg {
		return -y
	}
	return y
}

// geluf32 is the float32 tanh-approximation GELU used by the optimized
// backend's fused path.
func geluf32(x float32) float32 {
	return 0.5 * x * (1 + tanhf32(float32(geluC)*(x+0.044715*x*x*x)))
}

// geluGradf32 is d/dx geluf32.
func geluGradf32(x float32) float32 {
	inner := float32(geluC) * (x + 0.044715*x*x*x)
	t := tanhf32(inner)
	dInner := float32(geluC) * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dInner
}
