package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference O(n³) implementation used to validate the
// parallel blocked kernels.
func naiveMatMul(a, b *Mat) *Mat {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	RandN(m, rng, 1)
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 13}, {32, 64, 16}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		c := New(dims[0], dims[2])
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		if !c.Equal(want, 1e-4) {
			t.Fatalf("MatMul mismatch at dims %v", dims)
		}
	}
}

func TestMatMulTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 11, 7)
	b := randMat(rng, 13, 7)
	c := New(11, 13)
	MatMulT(c, a, b)
	want := naiveMatMul(a, b.T())
	if !c.Equal(want, 1e-4) {
		t.Fatal("MatMulT mismatch")
	}
}

func TestTMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 7, 11)
	b := randMat(rng, 7, 13)
	c := New(11, 13)
	TMatMul(c, a, b)
	want := naiveMatMul(a.T(), b)
	if !c.Equal(want, 1e-4) {
		t.Fatal("TMatMul mismatch")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 5, 6)
		b := randMat(rng, 6, 4)
		ab := New(5, 4)
		MatMul(ab, a, b)
		btat := New(4, 5)
		MatMul(btat, b.T(), a.T())
		return ab.T().Equal(btat, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) = A·B + A·C.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 4, 5)
		b := randMat(rng, 5, 3)
		c := randMat(rng, 5, 3)
		bc := New(5, 3)
		Add(bc, b, c)
		left := New(4, 3)
		MatMul(left, a, bc)
		ab, ac := New(4, 3), New(4, 3)
		MatMul(ab, a, b)
		MatMul(ac, a, c)
		right := New(4, 3)
		Add(right, ab, ac)
		return left.Equal(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsNormalised(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 10, 20)
	SoftmaxRows(m)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

// Property: softmax is invariant to adding a constant to the row.
func TestSoftmaxShiftInvariant(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if shift != shift || shift > 50 || shift < -50 { // NaN / extreme guard
			shift = 1
		}
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, 1, 16)
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] += shift
		}
		SoftmaxRows(a)
		SoftmaxRows(b)
		return a.Equal(b, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxBackwardMatchesFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 8
	x := make([]float32, n)
	dy := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		dy[i] = float32(rng.NormFloat64())
	}
	y := append([]float32(nil), x...)
	SoftmaxInPlace(y)
	dx := make([]float32, n)
	SoftmaxBackwardRow(dx, y, dy)
	// finite differences on loss = Σ dy_j * softmax(x)_j
	eps := float32(1e-3)
	for i := 0; i < n; i++ {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[i] += eps
		xm[i] -= eps
		SoftmaxInPlace(xp)
		SoftmaxInPlace(xm)
		var lp, lm float32
		for j := 0; j < n; j++ {
			lp += dy[j] * xp[j]
			lm += dy[j] * xm[j]
		}
		grad := (lp - lm) / (2 * eps)
		if math.Abs(float64(grad-dx[i])) > 1e-2 {
			t.Fatalf("softmax grad mismatch at %d: fd=%v got=%v", i, grad, dx[i])
		}
	}
}

func TestAddRowVecAndColSum(t *testing.T) {
	m := New(3, 2)
	AddRowVec(m, []float32{1, 2})
	want := FromSlice(3, 2, []float32{1, 2, 1, 2, 1, 2})
	if !m.Equal(want, 0) {
		t.Fatal("AddRowVec wrong")
	}
	out := make([]float32, 2)
	ColSum(out, m)
	if out[0] != 3 || out[1] != 6 {
		t.Fatalf("ColSum=%v", out)
	}
}

func TestHadamardScaleSub(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	c := New(1, 3)
	Hadamard(c, a, b)
	if c.Data[0] != 4 || c.Data[2] != 18 {
		t.Fatal("Hadamard wrong")
	}
	Sub(c, b, a)
	if c.Data[0] != 3 || c.Data[2] != 3 {
		t.Fatal("Sub wrong")
	}
	Scale(c, 2)
	if c.Data[0] != 6 {
		t.Fatal("Scale wrong")
	}
}

func TestDotUnrollTail(t *testing.T) {
	for n := 0; n < 9; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float32
		for i := range a {
			a[i] = float32(i + 1)
			b[i] = float32(2 * (i + 1))
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("Dot n=%d got=%v want=%v", n, got, want)
		}
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		seen := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	if Workers() != 1 {
		t.Fatal("SetWorkers(1) failed")
	}
	got := 0
	ParallelFor(10, func(lo, hi int) { got += hi - lo })
	if got != 10 {
		t.Fatal("single worker did not cover range")
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatal("reset failed")
	}
}

func TestApply(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, -2, 3})
	Apply(m, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if m.Data[1] != 0 || m.Data[2] != 3 {
		t.Fatal("Apply wrong")
	}
}

func TestRoundBF16(t *testing.T) {
	// 1.0 is exactly representable.
	if RoundBF16(1.0) != 1.0 {
		t.Fatal("1.0 must survive")
	}
	// bf16 has ~3 decimal digits: 1.001 rounds to nearby value within 0.004.
	v := RoundBF16(1.001)
	if math.Abs(float64(v)-1.001) > 0.004 {
		t.Fatalf("bf16 rounding too coarse: %v", v)
	}
	if v == 1.001 {
		t.Fatal("expected precision loss for 1.001")
	}
	// NaN and Inf preserved.
	if !math.IsNaN(float64(RoundBF16(float32(math.NaN())))) {
		t.Fatal("NaN must pass through")
	}
	if !math.IsInf(float64(RoundBF16(float32(math.Inf(1)))), 1) {
		t.Fatal("Inf must pass through")
	}
}

// Property: RoundBF16 is idempotent.
func TestRoundBF16Idempotent(t *testing.T) {
	f := func(v float32) bool {
		r := RoundBF16(v)
		if r != r { // NaN
			return true
		}
		return RoundBF16(r) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: relative error of bf16 rounding is bounded by 2^-8 for normals.
func TestRoundBF16RelativeError(t *testing.T) {
	f := func(v float32) bool {
		if v != v || math.IsInf(float64(v), 0) || math.Abs(float64(v)) < 1e-30 {
			return true
		}
		r := RoundBF16(v)
		rel := math.Abs(float64(r-v)) / math.Abs(float64(v))
		return rel <= 1.0/256.0+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(10, 10)
	XavierInit(m, rng)
	limit := float32(math.Sqrt(6.0 / 20.0))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier out of bounds: %v", v)
		}
	}
}
