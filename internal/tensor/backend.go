package tensor

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// Backend is the pluggable compute substrate behind every matrix kernel in
// the package: the linear-algebra primitives (MatMul/MatMulT/TMatMul,
// Dot/Axpy), the softmax/exp row ops the attention kernels stream through,
// and the fused bias+GELU pair that lets nn.Linear skip a full matrix pass.
// Package-level functions (MatMul, Dot, SoftmaxRows, BiasGELU, …) dispatch
// through the active backend, so every layer above — nn, attention, model,
// serve — switches backends without code changes.
//
// Two implementations exist, the same design shape as model.Plan:
//
//   - reference — the panel-blocked kernels the repo has always shipped.
//     Training defaults to it and its numerics are bitwise-pinned: per output
//     element, reduction terms are accumulated in strictly ascending p order
//     with av==0 contributions skipped (see MatMul).
//   - optimized — register-tiled, fixed-width-unrolled microkernels plus
//     fast float32 exp/tanh paths. Output tiling keeps every per-element
//     reduction in a single p-ascending accumulator chain, so its results
//     are independent of worker count and of every autotuned panel size
//     (self-deterministic); MatMul/MatMulT/TMatMul/MatVecRows/WeightedRowSum
//     match the reference bitwise, while Dot (multi-accumulator) and the
//     exp/softmax/GELU paths (float32 polynomials) differ within a small
//     stated tolerance — see DESIGN.md "Compute backends and quantized
//     serving".
//
// The interface is sealed (unexported method): backends live in this
// package, next to the parallel-for scheduler and the workspace arena their
// kernels are written against.
type Backend interface {
	// Name identifies the backend ("reference", "optimized").
	Name() string

	// MatMul computes C = A·B (C pre-allocated, overwritten).
	MatMul(c, a, b *Mat)
	// MatMulT computes C = A·Bᵀ.
	MatMulT(c, a, b *Mat)
	// TMatMul computes C = Aᵀ·B.
	TMatMul(c, a, b *Mat)
	// Dot returns the inner product of two equal-length slices.
	Dot(a, b []float32) float32
	// Axpy computes y += alpha*x for equal-length slices.
	Axpy(alpha float32, x, y []float32)

	// MatVecRows computes dst[r-lo] = m.Row(r)·x for r in [lo, hi) — the
	// batched row-gemv behind the flash/sparse tile score computation (one
	// dispatched call per tile instead of one Dot per row).
	MatVecRows(dst []float32, m *Mat, x []float32, lo, hi int)
	// WeightedRowSum accumulates acc[c] += Σ_{r∈[lo,hi)} w[r-lo]·m.Row(r)[c]
	// with r strictly ascending (a batched axpy sequence; the row order is
	// part of the determinism contract).
	WeightedRowSum(acc []float32, m *Mat, w []float32, lo, hi int)

	// SoftmaxRows applies a numerically stable softmax to each row in place.
	SoftmaxRows(m *Mat)
	// ExpShift computes dst[i] = exp(src[i]+shift) over equal-length slices
	// (the streaming-softmax primitive: shift carries the running max).
	ExpShift(dst, src []float32, shift float32)

	// BiasGELU computes, in one pass, z = u + bias (row-broadcast, written
	// back into u) and y = GELU(z). y must not alias u.
	BiasGELU(y, u *Mat, bias []float32)
	// BiasGELUGrad computes dz = dy ⊙ GELU'(z) and accumulates column sums
	// of dz into dbias (+=). dz must not alias dy or z.
	BiasGELUGrad(dz *Mat, dbias []float32, z, dy *Mat)

	// sealed marks the interface implementable only inside this package.
	sealed()
}

// The two built-in backends. Reference is the process default; Optimized is
// selected with SetBackend("opt") / TORCHGT_BACKEND=opt and autotunes its
// panel sizes on first selection.
var (
	Reference Backend = &refBackend{}
	Optimized Backend = newOptBackend()
)

type backendBox struct{ b Backend }

var activeBackend atomic.Pointer[backendBox]

func init() {
	name := os.Getenv("TORCHGT_BACKEND")
	b, err := backendByName(name)
	if err != nil {
		panic(fmt.Sprintf("tensor: TORCHGT_BACKEND=%q: %v", name, err))
	}
	Use(b)
}

// backendByName resolves a CLI/env spelling to a backend. The empty string
// is the reference default.
func backendByName(name string) (Backend, error) {
	switch name {
	case "", "ref", "reference":
		return Reference, nil
	case "opt", "optimized":
		return Optimized, nil
	}
	return nil, fmt.Errorf("unknown backend %q (have: %s)", name, backendNamesList())
}

func backendNamesList() string {
	names := BackendNames()
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// BackendNames lists the selectable backend spellings (canonical short
// forms, as accepted by SetBackend and the -backend CLI flags).
func BackendNames() []string { return []string{"ref", "opt"} }

// Use activates b for all subsequent kernel dispatch. The optimized backend
// autotunes its panel sizes on first activation. Safe for concurrent use
// with running kernels: a kernel reads the active backend once per call.
func Use(b Backend) {
	if o, ok := b.(*optBackend); ok {
		o.ensureTuned()
	}
	activeBackend.Store(&backendBox{b})
}

// SetBackend activates the backend named by a CLI/env spelling ("ref",
// "reference", "opt", "optimized"; "" keeps the reference default). It
// returns the previously active backend's name so callers can restore it.
func SetBackend(name string) (prev string, err error) {
	b, err := backendByName(name)
	if err != nil {
		return ActiveBackend().Name(), err
	}
	prev = ActiveBackend().Name()
	Use(b)
	return prev, nil
}

// ActiveBackend reports the backend all package-level kernels currently
// dispatch through.
func ActiveBackend() Backend { return activeBackend.Load().b }

// Dispatching entry points. Shape validation lives here, once, so every
// backend kernel can assume consistent operands.

// MatMul computes C = A·B. C must be pre-allocated with shape A.Rows×B.Cols;
// it is overwritten.
//
// Zero-skip contract (pinned by TestMatMulZeroSkipSemantics): an A element
// that is exactly zero contributes nothing to its output row — the
// corresponding B row is skipped entirely, so NaN/Inf values in B rows that
// only ever meet zero A entries do NOT propagate (0·NaN is treated as a
// skip, not as IEEE NaN). All backends implement this contract; TMatMul
// skips symmetrically on zero Aᵀ elements. MatMulT and Dot follow plain
// IEEE semantics (no skip).
func MatMul(c, a, b *Mat) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	ActiveBackend().MatMul(c, a, b)
}

// MatMulT computes C = A·Bᵀ. C must be A.Rows×B.Rows — the cache-friendly
// orientation for attention scores Q·Kᵀ.
func MatMulT(c, a, b *Mat) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT shapes %dx%d · (%dx%d)ᵀ -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	ActiveBackend().MatMulT(c, a, b)
}

// TMatMul computes C = Aᵀ·B. C must be A.Cols×B.Cols. Used for weight
// gradients dW = Xᵀ·dY.
func TMatMul(c, a, b *Mat) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul shapes (%dx%d)ᵀ · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	ActiveBackend().TMatMul(c, a, b)
}

// Dot returns the inner product of two equal-length slices.
func Dot(a, b []float32) float32 { return ActiveBackend().Dot(a, b) }

// Axpy computes y += alpha*x for equal-length slices.
func Axpy(alpha float32, x, y []float32) { ActiveBackend().Axpy(alpha, x, y) }

// MatVecRows computes dst[r-lo] = m.Row(r)·x for rows r in [lo, hi). On the
// reference backend each element is the plain Dot of the row with x
// (products commute exactly in IEEE, so Row·x ≡ x·Row bitwise).
func MatVecRows(dst []float32, m *Mat, x []float32, lo, hi int) {
	if lo < 0 || hi < lo || hi > m.Rows || len(x) != m.Cols || len(dst) < hi-lo {
		panic(fmt.Sprintf("tensor: MatVecRows rows [%d,%d) of %dx%d, len(x)=%d len(dst)=%d",
			lo, hi, m.Rows, m.Cols, len(x), len(dst)))
	}
	ActiveBackend().MatVecRows(dst, m, x, lo, hi)
}

// WeightedRowSum accumulates acc[c] += Σ w[r-lo]·m.Row(r)[c] over rows r in
// [lo, hi), ascending. Equivalent to the axpy sequence
// `for r { Axpy(w[r-lo], m.Row(r), acc) }` — all backends preserve that
// per-element left-to-right accumulation order bitwise.
func WeightedRowSum(acc []float32, m *Mat, w []float32, lo, hi int) {
	if lo < 0 || hi < lo || hi > m.Rows || len(acc) != m.Cols || len(w) < hi-lo {
		panic(fmt.Sprintf("tensor: WeightedRowSum rows [%d,%d) of %dx%d, len(acc)=%d len(w)=%d",
			lo, hi, m.Rows, m.Cols, len(acc), len(w)))
	}
	ActiveBackend().WeightedRowSum(acc, m, w, lo, hi)
}

// SoftmaxRows applies a numerically stable softmax to each row of m in place.
func SoftmaxRows(m *Mat) { ActiveBackend().SoftmaxRows(m) }

// ExpShift computes dst[i] = exp(src[i]+shift). dst and src must have equal
// length (dst may alias src). It is the vectorised exponential behind the
// flash kernel's streaming softmax.
func ExpShift(dst, src []float32, shift float32) {
	if len(dst) != len(src) {
		panic("tensor: ExpShift length mismatch")
	}
	ActiveBackend().ExpShift(dst, src, shift)
}

// BiasGELU fuses the bias add and GELU activation of a Linear layer into a
// single pass: u (holding X·W) becomes z = u + bias in place, and y receives
// GELU(z). One matrix read/write pass instead of AddRowVec + a separate
// activation sweep. y must be u's shape and must not alias it; len(bias)
// must equal u.Cols.
func BiasGELU(y, u *Mat, bias []float32) {
	if !y.SameShape(u) || len(bias) != u.Cols {
		panic(fmt.Sprintf("tensor: BiasGELU shapes y=%dx%d u=%dx%d bias=%d", y.Rows, y.Cols, u.Rows, u.Cols, len(bias)))
	}
	ActiveBackend().BiasGELU(y, u, bias)
}

// BiasGELUGrad is the backward of BiasGELU: dz = dy ⊙ GELU'(z), and the
// column sums of dz are accumulated (+=) into dbias — the bias gradient —
// in the same pass structure the unfused ColSum used (fixed row-ascending
// order, so results are worker-count independent).
func BiasGELUGrad(dz *Mat, dbias []float32, z, dy *Mat) {
	if !dz.SameShape(z) || !dz.SameShape(dy) || len(dbias) != z.Cols {
		panic(fmt.Sprintf("tensor: BiasGELUGrad shapes dz=%dx%d z=%dx%d dy=%dx%d dbias=%d",
			dz.Rows, dz.Cols, z.Rows, z.Cols, dy.Rows, dy.Cols, len(dbias)))
	}
	ActiveBackend().BiasGELUGrad(dz, dbias, z, dy)
}
