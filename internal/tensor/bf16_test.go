package tensor

import (
	"math"
	"testing"
)

// Edge-case coverage for RoundBF16 beyond the property tests in ops_test.go:
// subnormals, signed zero, NaN payloads, and the saturation boundary near
// MaxFloat32 — the corners the quantized bf16 serving path leans on.

func TestRoundBF16Subnormals(t *testing.T) {
	// The smallest positive float32 subnormal has no bf16 representation
	// with a nonzero mantissa; round-to-nearest-even sends tiny subnormals
	// to (signed) zero rather than inventing magnitude.
	tiny := math.Float32frombits(1) // 2^-149
	if got := RoundBF16(tiny); got != 0 {
		t.Fatalf("RoundBF16(min subnormal) = %v, want 0", got)
	}
	negTiny := math.Float32frombits(0x80000001)
	got := RoundBF16(negTiny)
	if got != 0 || math.Signbit(float64(got)) != true {
		t.Fatalf("RoundBF16(-min subnormal) = %v (signbit %v), want -0", got, math.Signbit(float64(got)))
	}
	// A large subnormal (top of the subnormal range) keeps its leading
	// mantissa bits: result must stay subnormal-or-zero-exponent and within
	// one bf16 ulp (2^-8 of the magnitude... here absolute: 2^-133 scale).
	big := math.Float32frombits(0x007fffff) // largest subnormal
	r := RoundBF16(big)
	if math.Float32bits(r)&0x7f800000 > 0x00800000 {
		t.Fatalf("RoundBF16(max subnormal) jumped exponent ranges: %x", math.Float32bits(r))
	}
	if math.Abs(float64(r-big)) > float64(big)/128 {
		t.Fatalf("RoundBF16(max subnormal) too far: %v -> %v", big, r)
	}
	// Idempotence holds on the subnormal outputs too.
	if RoundBF16(r) != r {
		t.Fatal("not idempotent on subnormal result")
	}
}

func TestRoundBF16NegativeZero(t *testing.T) {
	nz := float32(math.Copysign(0, -1))
	got := RoundBF16(nz)
	if math.Float32bits(got) != 0x80000000 {
		t.Fatalf("RoundBF16(-0) bits = %#x, want 0x80000000", math.Float32bits(got))
	}
	if math.Float32bits(RoundBF16(0)) != 0 {
		t.Fatal("RoundBF16(+0) must stay +0")
	}
}

func TestRoundBF16NaNPayload(t *testing.T) {
	// NaNs pass through with their payload bits untouched — the exponent
	// check short-circuits before any mantissa arithmetic could quiet or
	// reshuffle them.
	payloads := []uint32{
		0x7fc00001, // quiet NaN, low payload bit
		0x7f800001, // signalling NaN pattern
		0xffc0dead, // negative quiet NaN with payload
		0x7fffffff, // all-ones mantissa
	}
	for _, bits := range payloads {
		v := math.Float32frombits(bits)
		got := RoundBF16(v)
		if math.Float32bits(got) != bits {
			t.Fatalf("NaN payload %#x changed to %#x", bits, math.Float32bits(got))
		}
	}
	// ±Inf likewise.
	for _, bits := range []uint32{0x7f800000, 0xff800000} {
		if math.Float32bits(RoundBF16(math.Float32frombits(bits))) != bits {
			t.Fatalf("Inf %#x not preserved", bits)
		}
	}
}

func TestRoundBF16SaturationBoundary(t *testing.T) {
	maxBF16 := math.Float32frombits(0x7f7f0000) // (2−2⁻⁷)·2¹²⁷, largest finite bf16
	// MaxFloat32 would round up past the largest finite bf16: must saturate,
	// not overflow to Inf.
	if got := RoundBF16(math.MaxFloat32); got != maxBF16 {
		t.Fatalf("RoundBF16(MaxFloat32) = %v, want saturation to %v", got, maxBF16)
	}
	if got := RoundBF16(-math.MaxFloat32); got != -maxBF16 {
		t.Fatalf("RoundBF16(-MaxFloat32) = %v, want -maxBF16", got)
	}
	// The largest finite bf16 itself is a fixed point.
	if RoundBF16(maxBF16) != maxBF16 {
		t.Fatal("maxBF16 must survive unchanged")
	}
	// Just below the rounding midpoint above maxBF16, values round DOWN to
	// maxBF16 without tripping saturation.
	below := math.Float32frombits(0x7f7f0000 | 0x7fff)
	if RoundBF16(below) != maxBF16 {
		t.Fatalf("value below midpoint must round down to maxBF16, got %v", RoundBF16(below))
	}
	// At/above the midpoint the unsaturated result would be Inf; the clamp
	// keeps it finite.
	above := math.Float32frombits(0x7f7f0000 | 0x8000)
	if got := RoundBF16(above); math.IsInf(float64(got), 0) || got != maxBF16 {
		t.Fatalf("midpoint value must saturate to maxBF16, got %v", got)
	}
}

func TestMaxRelErrorBF16(t *testing.T) {
	// For normal values the bound is 2⁻⁸; the helper must confirm it on a
	// dense scan and report 0 for exactly-representable inputs.
	vals := make([]float32, 0, 4096)
	for i := 0; i < 4096; i++ {
		vals = append(vals, float32(1+float64(i)/4096))
	}
	worst := MaxRelErrorBF16(vals)
	if worst > 1.0/256+1e-9 {
		t.Fatalf("normal-range worst rel err %v exceeds 2^-8", worst)
	}
	if worst == 0 {
		t.Fatal("scan must find some rounding error")
	}
	if MaxRelErrorBF16([]float32{1, 2, 0.5, -4}) != 0 {
		t.Fatal("exactly representable values must give 0")
	}
	// Zeros, NaN, Inf are ignored rather than polluting the max.
	if MaxRelErrorBF16([]float32{0, float32(math.NaN()), float32(math.Inf(1))}) != 0 {
		t.Fatal("non-finite / zero entries must contribute nothing")
	}
	// Subnormals may reach rel err 1 (round to zero) — included by design.
	tiny := math.Float32frombits(1)
	if MaxRelErrorBF16([]float32{tiny}) != 1 {
		t.Fatalf("min subnormal rel err = %v, want 1", MaxRelErrorBF16([]float32{tiny}))
	}
}
