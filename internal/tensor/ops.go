package tensor

import "math"

// Element-wise and row/column ops shared by all backends. The matrix kernels
// (MatMul, MatMulT, TMatMul, Dot, Axpy, SoftmaxRows, ExpShift, BiasGELU,
// BiasGELUGrad) live in backend.go and dispatch through the active Backend;
// everything here is memory-bound bookkeeping with a single canonical
// implementation.

// Add computes c = a + b element-wise (c may alias a or b).
func Add(c, a, b *Mat) {
	a.mustSameShape(b)
	a.mustSameShape(c)
	for i := range c.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Mat) {
	a.mustSameShape(b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub computes c = a - b element-wise.
func Sub(c, a, b *Mat) {
	a.mustSameShape(b)
	a.mustSameShape(c)
	for i := range c.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Mat, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Hadamard computes c = a ⊙ b element-wise.
func Hadamard(c, a, b *Mat) {
	a.mustSameShape(b)
	a.mustSameShape(c)
	for i := range c.Data {
		c.Data[i] = a.Data[i] * b.Data[i]
	}
}

// AddRowVec adds vector v (len = m.Cols) to every row of m.
func AddRowVec(m *Mat, v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec length mismatch")
	}
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] += v[j]
			}
		}
	})
}

// ColSum accumulates the column sums of m into out (len = m.Cols), adding to
// existing values. Serial and row-ascending by design: the fixed accumulation
// order keeps bias gradients worker-count independent.
func ColSum(out []float32, m *Mat) {
	if len(out) != m.Cols {
		panic("tensor: ColSum length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
}

// SoftmaxInPlace applies softmax to a single vector.
func SoftmaxInPlace(row []float32) {
	if len(row) == 0 {
		return
	}
	mx := row[0]
	for _, v := range row[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range row {
		e := float32(math.Exp(float64(v - mx)))
		row[j] = e
		sum += float64(e)
	}
	inv := float32(1.0 / sum)
	for j := range row {
		row[j] *= inv
	}
}

// SoftmaxBackwardRow computes dx for one softmax row given y = softmax(x) and
// upstream dy: dx_j = y_j * (dy_j - Σ_k dy_k y_k). Result written into dx.
func SoftmaxBackwardRow(dx, y, dy []float32) {
	var dot float32
	for k := range y {
		dot += dy[k] * y[k]
	}
	for j := range y {
		dx[j] = y[j] * (dy[j] - dot)
	}
}

// Apply sets m[i] = f(m[i]) for every element.
func Apply(m *Mat, f func(float32) float32) {
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo * m.Cols; i < hi*m.Cols; i++ {
			m.Data[i] = f(m.Data[i])
		}
	})
}
