package tensor

import (
	"fmt"
	"math"
)

// blockPanel is the shared-operand panel height of the blocked matmul
// kernels: the loops over the reduction (or broadcast) dimension are tiled so
// that a panel of blockPanel rows of the shared operand stays cache-resident
// while every row of the worker's chunk consumes it. 128 rows × typical
// hidden widths keeps a panel well inside L2 without starving L1.
const blockPanel = 128

// MatMul computes C = A·B. C must be pre-allocated with shape A.Rows×B.Cols;
// it is overwritten. The kernel is parallelised over rows of A and blocked
// over panels of B: for each panel of blockPanel rows of B, every row of the
// chunk streams the panel with an ikj/axpy inner loop, so the panel is read
// from cache (hi−lo) times instead of main memory. Per-element summation
// order is unchanged from the unblocked kernel (p strictly ascending per
// output row), so results are bitwise identical.
func MatMul(c, a, b *Mat) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shapes %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n, k := a.Rows, a.Cols
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for x := range ci {
				ci[x] = 0
			}
		}
		for p0 := 0; p0 < k; p0 += blockPanel {
			p1 := p0 + blockPanel
			if p1 > k {
				p1 = k
			}
			for i := lo; i < hi; i++ {
				ai := a.Row(i)
				ci := c.Row(i)
				for p := p0; p < p1; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					axpy(av, b.Row(p), ci)
				}
			}
		}
	})
}

// MatMulT computes C = A·Bᵀ. C must be A.Rows×B.Rows. The innermost loop is a
// dot product over contiguous rows of both A and B — the cache-friendly
// orientation for attention scores Q·Kᵀ — and the j loop is blocked into
// panels of B rows reused across the chunk's A rows.
func MatMulT(c, a, b *Mat) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT shapes %dx%d · (%dx%d)ᵀ -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	m := b.Rows
	ParallelFor(a.Rows, func(lo, hi int) {
		for j0 := 0; j0 < m; j0 += blockPanel {
			j1 := j0 + blockPanel
			if j1 > m {
				j1 = m
			}
			for i := lo; i < hi; i++ {
				ai := a.Row(i)
				ci := c.Row(i)
				for j := j0; j < j1; j++ {
					ci[j] = Dot(ai, b.Row(j))
				}
			}
		}
	})
}

// TMatMul computes C = Aᵀ·B. C must be A.Cols×B.Cols. Used for weight
// gradients dW = Xᵀ·dY. Parallelised over columns of A (rows of C) and
// blocked over panels of A/B rows so both operand panels stay cache-resident
// across the chunk. Summation order per output element is unchanged
// (p strictly ascending), keeping results bitwise identical.
func TMatMul(c, a, b *Mat) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: TMatMul shapes (%dx%d)ᵀ · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	ParallelFor(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for x := range ci {
				ci[x] = 0
			}
		}
		for p0 := 0; p0 < a.Rows; p0 += blockPanel {
			p1 := p0 + blockPanel
			if p1 > a.Rows {
				p1 = a.Rows
			}
			for i := lo; i < hi; i++ {
				ci := c.Row(i)
				for p := p0; p < p1; p++ {
					av := a.Data[p*a.Cols+i]
					if av == 0 {
						continue
					}
					axpy(av, b.Row(p), ci)
				}
			}
		}
	})
}

// Dot returns the inner product of two equal-length slices.
func Dot(a, b []float32) float32 {
	var s float32
	// 4-way unrolled; bounds already equal by construction.
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes y += alpha*x.
func axpy(alpha float32, x, y []float32) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Axpy computes y += alpha*x for equal-length slices (exported for kernels).
func Axpy(alpha float32, x, y []float32) { axpy(alpha, x, y) }

// Add computes c = a + b element-wise (c may alias a or b).
func Add(c, a, b *Mat) {
	a.mustSameShape(b)
	a.mustSameShape(c)
	for i := range c.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Mat) {
	a.mustSameShape(b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub computes c = a - b element-wise.
func Sub(c, a, b *Mat) {
	a.mustSameShape(b)
	a.mustSameShape(c)
	for i := range c.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Mat, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Hadamard computes c = a ⊙ b element-wise.
func Hadamard(c, a, b *Mat) {
	a.mustSameShape(b)
	a.mustSameShape(c)
	for i := range c.Data {
		c.Data[i] = a.Data[i] * b.Data[i]
	}
}

// AddRowVec adds vector v (len = m.Cols) to every row of m.
func AddRowVec(m *Mat, v []float32) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec length mismatch")
	}
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] += v[j]
			}
		}
	})
}

// ColSum accumulates the column sums of m into out (len = m.Cols), adding to
// existing values.
func ColSum(out []float32, m *Mat) {
	if len(out) != m.Cols {
		panic("tensor: ColSum length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of m in place.
func SoftmaxRows(m *Mat) {
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			SoftmaxInPlace(m.Row(i))
		}
	})
}

// SoftmaxInPlace applies softmax to a single vector.
func SoftmaxInPlace(row []float32) {
	if len(row) == 0 {
		return
	}
	mx := row[0]
	for _, v := range row[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for j, v := range row {
		e := float32(math.Exp(float64(v - mx)))
		row[j] = e
		sum += float64(e)
	}
	inv := float32(1.0 / sum)
	for j := range row {
		row[j] *= inv
	}
}

// SoftmaxBackwardRow computes dx for one softmax row given y = softmax(x) and
// upstream dy: dx_j = y_j * (dy_j - Σ_k dy_k y_k). Result written into dx.
func SoftmaxBackwardRow(dx, y, dy []float32) {
	var dot float32
	for k := range y {
		dot += dy[k] * y[k]
	}
	for j := range y {
		dx[j] = y[j] * (dy[j] - dot)
	}
}

// Apply sets m[i] = f(m[i]) for every element.
func Apply(m *Mat, f func(float32) float32) {
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo * m.Cols; i < hi*m.Cols; i++ {
			m.Data[i] = f(m.Data[i])
		}
	})
}
