package tensor

import "math"

// RoundBF16 rounds a float32 to bfloat16 precision (8-bit mantissa) using
// round-to-nearest-even, returning the value re-expanded to float32. This
// emulates the reduced-precision arithmetic of FlashAttention's BF16 mode,
// which the paper's Table VII identifies as the source of GP-Flash's
// accuracy loss.
func RoundBF16(v float32) float32 {
	bits := math.Float32bits(v)
	// NaN/Inf pass through (exponent all ones).
	if bits&0x7f800000 == 0x7f800000 {
		return v
	}
	lsb := (bits >> 16) & 1
	rounded := bits + 0x7fff + lsb
	// Saturate finite values that would round past the largest finite bf16
	// (|v| > (2−2⁻⁷)·2¹²⁷) instead of overflowing to ±Inf, keeping the
	// conversion's relative error bounded by 2⁻⁸ for all normal inputs.
	if rounded&0x7f800000 == 0x7f800000 {
		return math.Float32frombits(bits&0x80000000 | 0x7f7f0000)
	}
	return math.Float32frombits(rounded &^ 0xffff)
}

// RoundBF16Slice rounds every element of s to bfloat16 precision in place.
func RoundBF16Slice(s []float32) {
	for i, v := range s {
		s[i] = RoundBF16(v)
	}
}

// RoundBF16Mat rounds every element of m to bfloat16 precision in place.
func RoundBF16Mat(m *Mat) { RoundBF16Slice(m.Data) }

// MaxRelErrorBF16 reports the worst-case relative rounding error incurred by
// RoundBF16 over s: max over finite, non-zero elements of
// |RoundBF16(v)−v| / |v|. Subnormal inputs are included — their relative
// error can reach 1 (they round to zero), which is exactly why quantized
// serving documents its bound for normal-range weights. Elements that are
// zero, NaN, or Inf contribute nothing. Used by the serving error-bound test
// to tie the measured snapshot deviation back to the per-weight 2⁻⁸ bf16
// bound.
func MaxRelErrorBF16(s []float32) float64 {
	worst := 0.0
	for _, v := range s {
		fv := float64(v)
		if fv == 0 || math.IsNaN(fv) || math.IsInf(fv, 0) {
			continue
		}
		rel := math.Abs(float64(RoundBF16(v))-fv) / math.Abs(fv)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
