package tensor

import (
	"math"
	"math/rand"
)

// RandN fills m with N(0, std²) samples from rng.
func RandN(m *Mat, rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// XavierInit fills m with Xavier/Glorot uniform samples appropriate for a
// fanIn×fanOut weight matrix.
func XavierInit(m *Mat, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
}

// RandUniform fills m with Uniform[lo, hi) samples.
func RandUniform(m *Mat, rng *rand.Rand, lo, hi float64) {
	for i := range m.Data {
		m.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}
