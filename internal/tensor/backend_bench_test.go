package tensor

import (
	"math/rand"
	"testing"
)

// Per-kernel backend benchmarks at a transformer-step-like size
// (256 tokens × 128 hidden). Worker count pinned to 1 so the numbers
// measure the microkernels, not the scheduler.

func benchKernel(b *testing.B, bk Backend, run func(bk Backend, a, bm, c, cs, ct *Mat)) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 256, 128)
	bm := randMat(rng, 128, 128)
	c := New(256, 128)  // A·B
	cs := New(256, 256) // A·Aᵀ (scores shape)
	ct := New(128, 128) // Aᵀ·A (weight-grad shape)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(bk, a, bm, c, cs, ct)
	}
}

func BenchmarkMatMulRef(b *testing.B) {
	benchKernel(b, Reference, func(bk Backend, a, bm, c, _, _ *Mat) { bk.MatMul(c, a, bm) })
}

func BenchmarkMatMulOpt(b *testing.B) {
	benchKernel(b, Optimized, func(bk Backend, a, bm, c, _, _ *Mat) { bk.MatMul(c, a, bm) })
}

func BenchmarkMatMulTRef(b *testing.B) {
	benchKernel(b, Reference, func(bk Backend, a, _, _, cs, _ *Mat) { bk.MatMulT(cs, a, a) })
}

func BenchmarkMatMulTOpt(b *testing.B) {
	benchKernel(b, Optimized, func(bk Backend, a, _, _, cs, _ *Mat) { bk.MatMulT(cs, a, a) })
}

func BenchmarkTMatMulRef(b *testing.B) {
	benchKernel(b, Reference, func(bk Backend, a, _, _, _, ct *Mat) { bk.TMatMul(ct, a, a) })
}

func BenchmarkTMatMulOpt(b *testing.B) {
	benchKernel(b, Optimized, func(bk Backend, a, _, _, _, ct *Mat) { bk.TMatMul(ct, a, a) })
}

func BenchmarkSoftmaxRowsRef(b *testing.B) {
	benchKernel(b, Reference, func(bk Backend, a, _, _, _, _ *Mat) { bk.SoftmaxRows(a) })
}

func BenchmarkSoftmaxRowsOpt(b *testing.B) {
	benchKernel(b, Optimized, func(bk Backend, a, _, _, _, _ *Mat) { bk.SoftmaxRows(a) })
}

func BenchmarkExpShiftRef(b *testing.B) {
	benchKernel(b, Reference, func(bk Backend, a, _, c, _, _ *Mat) { bk.ExpShift(c.Data, a.Data, -1) })
}

func BenchmarkExpShiftOpt(b *testing.B) {
	benchKernel(b, Optimized, func(bk Backend, a, _, c, _, _ *Mat) { bk.ExpShift(c.Data, a.Data, -1) })
}

func BenchmarkBiasGELURef(b *testing.B) {
	benchKernel(b, Reference, func(bk Backend, a, _, c, _, _ *Mat) { bk.BiasGELU(c, a, a.Row(0)) })
}

func BenchmarkBiasGELUOpt(b *testing.B) {
	benchKernel(b, Optimized, func(bk Backend, a, _, c, _, _ *Mat) { bk.BiasGELU(c, a, a.Row(0)) })
}
