package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// withBackend activates b for the duration of the test and restores the
// previous backend afterwards.
func withBackend(t *testing.T, b Backend) {
	t.Helper()
	prev := ActiveBackend()
	Use(b)
	t.Cleanup(func() { Use(prev) })
}

func TestBackendByName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"", "reference", false},
		{"ref", "reference", false},
		{"reference", "reference", false},
		{"opt", "optimized", false},
		{"optimized", "optimized", false},
		{"gpu", "", true},
		{"REF", "", true}, // spellings are case-sensitive
	}
	for _, c := range cases {
		b, err := backendByName(c.in)
		if c.err {
			if err == nil {
				t.Fatalf("backendByName(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("backendByName(%q): %v", c.in, err)
		}
		if b.Name() != c.want {
			t.Fatalf("backendByName(%q) = %s, want %s", c.in, b.Name(), c.want)
		}
	}
}

func TestSetBackendRoundTrip(t *testing.T) {
	withBackend(t, Reference)
	prev, err := SetBackend("opt")
	if err != nil || prev != "reference" {
		t.Fatalf("SetBackend(opt) prev=%q err=%v", prev, err)
	}
	if ActiveBackend().Name() != "optimized" {
		t.Fatal("opt not active")
	}
	if _, err := SetBackend("bogus"); err == nil {
		t.Fatal("SetBackend(bogus) must error")
	}
	if ActiveBackend().Name() != "optimized" {
		t.Fatal("failed SetBackend must not change the active backend")
	}
}

// Satellite: the av==0 fast-path contract. Skipping the axpy when an A
// element is zero is NOT plain IEEE semantics — 0·NaN = NaN would otherwise
// propagate — so the intended behaviour is pinned here for every backend:
// NaN/Inf in a B row reached only through zero A entries must not leak into
// C, while a non-zero A entry meeting NaN/Inf must propagate it.
func TestMatMulZeroSkipSemantics(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, bk := range []Backend{Reference, Optimized} {
		t.Run(bk.Name(), func(t *testing.T) {
			// A row 0 is zero at columns 1,2 → B rows 1,2 (all NaN/Inf) are
			// skipped for C row 0. A row 1 hits B row 1 with a non-zero
			// coefficient → C row 1 is NaN.
			a := FromSlice(2, 3, []float32{
				2, 0, 0,
				1, 1, 0,
			})
			b := FromSlice(3, 2, []float32{
				1, 2,
				nan, inf,
				inf, nan,
			})
			c := New(2, 2)
			bk.MatMul(c, a, b)
			if c.At(0, 0) != 2 || c.At(0, 1) != 4 {
				t.Fatalf("zero-skip row polluted: %v", c.Row(0))
			}
			if !math.IsNaN(float64(c.At(1, 0))) || !math.IsInf(float64(c.At(1, 1)), 1) {
				t.Fatalf("non-zero path must propagate NaN/Inf: %v", c.Row(1))
			}

			// TMatMul skips symmetrically on zero Aᵀ elements: column 0 of A
			// is zero in rows 1,2, so B's NaN rows never reach C row 0.
			at := FromSlice(3, 2, []float32{
				3, 1,
				0, 1,
				0, 0,
			})
			ct := New(2, 2)
			bk.TMatMul(ct, at, b)
			if ct.At(0, 0) != 3 || ct.At(0, 1) != 6 {
				t.Fatalf("TMatMul zero-skip row polluted: %v", ct.Row(0))
			}
			if !math.IsNaN(float64(ct.At(1, 0))) {
				t.Fatalf("TMatMul non-zero path must propagate NaN: %v", ct.Row(1))
			}

			// MatMulT and Dot follow plain IEEE semantics: zero times NaN is
			// NaN, no skip.
			zrow := FromSlice(1, 2, []float32{0, 0})
			nrow := FromSlice(1, 2, []float32{nan, 1})
			cm := New(1, 1)
			bk.MatMulT(cm, zrow, nrow)
			if !math.IsNaN(float64(cm.At(0, 0))) {
				t.Fatalf("%s: MatMulT must not zero-skip (got %v)", bk.Name(), cm.At(0, 0))
			}
			if d := bk.Dot(zrow.Data, nrow.Data); !math.IsNaN(float64(d)) {
				t.Fatalf("%s: Dot must not zero-skip (got %v)", bk.Name(), d)
			}
		})
	}
}

// The optimized MatMul and TMatMul perform the identical per-element float
// operation sequence as the reference (single accumulator, ascending p,
// zero-skip), so on any one platform they must agree bitwise.
func TestOptMatMulBitwiseEqualsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 13}, {33, 65, 19}, {64, 128, 96}} {
		n, k, m := dims[0], dims[1], dims[2]
		a := randMat(rng, n, k)
		// Sprinkle exact zeros so the skip path is exercised.
		for i := 0; i < len(a.Data); i += 7 {
			a.Data[i] = 0
		}
		b := randMat(rng, k, m)
		cr, co := New(n, m), New(n, m)
		Reference.MatMul(cr, a, b)
		Optimized.MatMul(co, a, b)
		if !bitwiseEqual(cr, co) {
			t.Fatalf("MatMul dims %v: opt not bitwise equal to ref", dims)
		}
		tr, to := New(k, m), New(k, m)
		at := randMat(rng, n, k)
		bt := randMat(rng, n, m)
		for i := 0; i < len(at.Data); i += 5 {
			at.Data[i] = 0
		}
		Reference.TMatMul(tr, at, bt)
		Optimized.TMatMul(to, at, bt)
		if !bitwiseEqual(tr, to) {
			t.Fatalf("TMatMul dims %v: opt not bitwise equal to ref", dims)
		}
		// MatMulT rides on MatVecRows, which keeps the reference Dot's
		// per-element reduction statement — bitwise, not just tolerance.
		mtA := randMat(rng, n, k)
		mtB := randMat(rng, m, k)
		mr, mo := New(n, m), New(n, m)
		Reference.MatMulT(mr, mtA, mtB)
		Optimized.MatMulT(mo, mtA, mtB)
		if !bitwiseEqual(mr, mo) {
			t.Fatalf("MatMulT dims %v: opt not bitwise equal to ref", dims)
		}
		// MatVecRows and WeightedRowSum directly (all remainder cases as n
		// and m sweep odd sizes)
		xv := make([]float32, k)
		for i := range xv {
			xv[i] = float32(rng.NormFloat64())
		}
		dstR := make([]float32, n)
		dstO := make([]float32, n)
		Reference.MatVecRows(dstR, mtA, xv, 0, n)
		Optimized.MatVecRows(dstO, mtA, xv, 0, n)
		for i := range dstR {
			if math.Float32bits(dstR[i]) != math.Float32bits(dstO[i]) {
				t.Fatalf("MatVecRows dims %v: element %d differs", dims, i)
			}
		}
		w := make([]float32, n)
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		accR := make([]float32, k)
		accO := make([]float32, k)
		for i := range accR {
			accR[i] = float32(rng.NormFloat64())
			accO[i] = accR[i]
		}
		Reference.WeightedRowSum(accR, mtA, w, 0, n)
		Optimized.WeightedRowSum(accO, mtA, w, 0, n)
		for i := range accR {
			if math.Float32bits(accR[i]) != math.Float32bits(accO[i]) {
				t.Fatalf("WeightedRowSum dims %v: element %d differs", dims, i)
			}
		}
	}
}

func bitwiseEqual(a, b *Mat) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// MatMulT, Dot, and the fast-math ops use different accumulation groupings
// or float32 polynomials: equality holds only within tolerance.
func TestOptKernelsWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 23, 67)
	b := randMat(rng, 31, 67)
	cr, co := New(23, 31), New(23, 31)
	Reference.MatMulT(cr, a, b)
	Optimized.MatMulT(co, a, b)
	if !cr.Equal(co, 1e-4) {
		t.Fatal("MatMulT beyond tolerance")
	}

	x := make([]float32, 1023)
	y := make([]float32, 1023)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	dr := Reference.Dot(x, y)
	do := Optimized.Dot(x, y)
	if math.Abs(float64(dr-do)) > 1e-3*(1+math.Abs(float64(dr))) {
		t.Fatalf("Dot beyond tolerance: ref=%v opt=%v", dr, do)
	}

	sr := randMat(rng, 9, 33)
	so := sr.Clone()
	Reference.SoftmaxRows(sr)
	Optimized.SoftmaxRows(so)
	if !sr.Equal(so, 1e-5) {
		t.Fatal("SoftmaxRows beyond tolerance")
	}

	src := make([]float32, 257)
	for i := range src {
		src[i] = float32(rng.NormFloat64() * 3)
	}
	er := make([]float32, len(src))
	eo := make([]float32, len(src))
	Reference.ExpShift(er, src, -1.5)
	Optimized.ExpShift(eo, src, -1.5)
	for i := range er {
		rel := math.Abs(float64(er[i]-eo[i])) / math.Abs(float64(er[i]))
		if rel > 1e-5 {
			t.Fatalf("ExpShift rel err %v at %d", rel, i)
		}
	}
}

// The optimized backend's results must not depend on the worker count (each
// output element's accumulator chain is fixed by the kernel, not the
// schedule) nor on repetition. Bitwise, not tolerance.
func TestOptBackendWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 37, 53)
	b := randMat(rng, 53, 41)
	bt := randMat(rng, 41, 53)
	base := SetWorkers(1)
	defer SetWorkers(base)

	c1 := New(37, 41)
	Optimized.MatMul(c1, a, b)
	ct1 := New(37, 41)
	Optimized.MatMulT(ct1, a, bt)
	s1 := a.Clone()
	Optimized.SoftmaxRows(s1)

	for _, w := range []int{2, 3, 8} {
		SetWorkers(w)
		c := New(37, 41)
		Optimized.MatMul(c, a, b)
		if !bitwiseEqual(c1, c) {
			t.Fatalf("MatMul differs at %d workers", w)
		}
		ct := New(37, 41)
		Optimized.MatMulT(ct, a, bt)
		if !bitwiseEqual(ct1, ct) {
			t.Fatalf("MatMulT differs at %d workers", w)
		}
		s := a.Clone()
		Optimized.SoftmaxRows(s)
		if !bitwiseEqual(s1, s) {
			t.Fatalf("SoftmaxRows differs at %d workers", w)
		}
	}
	// And across repeated runs at the same width.
	c := New(37, 41)
	Optimized.MatMul(c, a, b)
	if !bitwiseEqual(c1, c) {
		t.Fatal("MatMul not reproducible across runs")
	}
}

// Panel width must be numerics-neutral: any candidate produces bitwise
// identical output (this is what makes autotuning safe).
func TestOptPanelWidthNumericsNeutral(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 19, 83)
	b := randMat(rng, 83, 147)
	o := Optimized.(*optBackend)
	want := New(19, 147)
	o.matmulChunk(want, a, b, 0, 19, panelCandidates[0])
	for _, w := range panelCandidates[1:] {
		got := New(19, 147)
		o.matmulChunk(got, a, b, 0, 19, w)
		if !bitwiseEqual(want, got) {
			t.Fatalf("panel width %d changed MatMul numerics", w)
		}
	}
	bt := randMat(rng, 147, 83)
	wantT := New(19, 147)
	o.matmulTChunk(wantT, a, bt, 0, 19, panelCandidates[0])
	for _, w := range panelCandidates[1:] {
		got := New(19, 147)
		o.matmulTChunk(got, a, bt, 0, 19, w)
		if !bitwiseEqual(wantT, got) {
			t.Fatalf("panel width %d changed MatMulT numerics", w)
		}
	}
}

func TestAutotuneReportAfterUse(t *testing.T) {
	withBackend(t, Optimized)
	rep, ok := TuningReport()
	if !ok {
		t.Fatal("TuningReport must be available after Use(Optimized)")
	}
	if len(rep.Tunings) != 3 {
		t.Fatalf("want 3 kernel tunings, got %d", len(rep.Tunings))
	}
	for _, tu := range rep.Tunings {
		found := false
		for _, c := range tu.Candidates {
			if c == tu.Chosen {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: chosen panel %d not among candidates %v", tu.Kernel, tu.Chosen, tu.Candidates)
		}
		if len(tu.NsPerOp) != len(tu.Candidates) {
			t.Fatalf("%s: sweep incomplete", tu.Kernel)
		}
	}
	if len(rep.Speedups) == 0 {
		t.Fatal("speedup measurements missing")
	}
	o := Optimized.(*optBackend)
	if o.mmPanel <= 0 || o.mtPanel <= 0 {
		t.Fatal("panels not set")
	}
}

// Fast float32 exp: relative error vs math.Exp below 1e-6 across the full
// finite range, exact at the overflow/underflow clamps, NaN-transparent.
func TestExpf32Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	check := func(x float32) {
		want := math.Exp(float64(x))
		got := float64(expf32(x))
		if want < 1.3e-38 { // near/below normal range: expf32 flushes to zero
			if got > 2e-38 {
				t.Fatalf("expf32(%v) = %v, want flush toward 0", x, got)
			}
			return
		}
		if math.IsInf(want, 1) || want > math.MaxFloat32 {
			if !math.IsInf(got, 1) && got < math.MaxFloat32/2 {
				t.Fatalf("expf32(%v) = %v, want overflow", x, got)
			}
			return
		}
		rel := math.Abs(got-want) / want
		if rel > 1e-6 {
			t.Fatalf("expf32(%v): rel err %v", x, rel)
		}
	}
	for x := float32(-90); x <= 90; x += 0.37 {
		check(x)
	}
	for i := 0; i < 2000; i++ {
		check(float32(rng.NormFloat64() * 20))
	}
	if v := expf32(float32(math.NaN())); !math.IsNaN(float64(v)) {
		t.Fatal("expf32(NaN) must be NaN")
	}
	if v := expf32(0); v != 1 {
		t.Fatalf("expf32(0) = %v", v)
	}
}

func TestTanhf32Accuracy(t *testing.T) {
	for x := float32(-15); x <= 15; x += 0.013 {
		want := math.Tanh(float64(x))
		got := float64(tanhf32(x))
		if math.Abs(got-want) > 2e-6 {
			t.Fatalf("tanhf32(%v): want %v got %v", x, want, got)
		}
	}
	// Exact symmetry.
	for _, x := range []float32{0.1, 1.7, 5, 12} {
		if tanhf32(-x) != -tanhf32(x) {
			t.Fatalf("tanhf32 not odd at %v", x)
		}
	}
	if v := tanhf32(float32(math.NaN())); !math.IsNaN(float64(v)) {
		t.Fatal("tanhf32(NaN) must be NaN")
	}
}

// Reference BiasGELU must be bitwise identical to the unfused
// AddRowVec + per-element float64 GELU sequence it replaced.
func TestRefBiasGELUMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	u := randMat(rng, 13, 21)
	bias := make([]float32, 21)
	for j := range bias {
		bias[j] = float32(rng.NormFloat64())
	}

	// Unfused: z = u + bias, y = GELU(z) element-wise.
	z := u.Clone()
	AddRowVec(z, bias)
	yWant := New(13, 21)
	for i, v := range z.Data {
		yWant.Data[i] = float32(GELU(float64(v)))
	}

	uf := u.Clone()
	y := New(13, 21)
	Reference.BiasGELU(y, uf, bias)
	if !bitwiseEqual(uf, z) {
		t.Fatal("fused z differs from AddRowVec")
	}
	if !bitwiseEqual(y, yWant) {
		t.Fatal("fused GELU differs from unfused")
	}

	// Backward: dz = dy ⊙ GELU'(z), dbias += colsum(dz).
	dy := randMat(rng, 13, 21)
	dzWant := New(13, 21)
	for i := range z.Data {
		dzWant.Data[i] = dy.Data[i] * float32(GELUGrad(float64(z.Data[i])))
	}
	dbWant := make([]float32, 21)
	ColSum(dbWant, dzWant)

	dz := New(13, 21)
	dbias := make([]float32, 21)
	Reference.BiasGELUGrad(dz, dbias, z, dy)
	if !bitwiseEqual(dz, dzWant) {
		t.Fatal("fused dz differs")
	}
	for j := range dbias {
		if math.Float32bits(dbias[j]) != math.Float32bits(dbWant[j]) {
			t.Fatalf("dbias[%d]: %v != %v", j, dbias[j], dbWant[j])
		}
	}
}

// Optimized BiasGELU stays within the fast-math tolerance of reference.
func TestOptBiasGELUWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	u := randMat(rng, 11, 19)
	bias := make([]float32, 19)
	for j := range bias {
		bias[j] = float32(rng.NormFloat64())
	}
	ur, uo := u.Clone(), u.Clone()
	yr, yo := New(11, 19), New(11, 19)
	Reference.BiasGELU(yr, ur, bias)
	Optimized.BiasGELU(yo, uo, bias)
	if !bitwiseEqual(ur, uo) {
		t.Fatal("z must be exact (plain float32 add)")
	}
	if !yr.Equal(yo, 1e-5) {
		t.Fatal("opt GELU beyond tolerance")
	}

	dy := randMat(rng, 11, 19)
	dzr, dzo := New(11, 19), New(11, 19)
	dbr := make([]float32, 19)
	dbo := make([]float32, 19)
	Reference.BiasGELUGrad(dzr, dbr, ur, dy)
	Optimized.BiasGELUGrad(dzo, dbo, uo, dy)
	if !dzr.Equal(dzo, 1e-5) {
		t.Fatal("opt GELU grad beyond tolerance")
	}
	for j := range dbr {
		if math.Abs(float64(dbr[j]-dbo[j])) > 1e-4 {
			t.Fatalf("dbias[%d] beyond tolerance: %v vs %v", j, dbr[j], dbo[j])
		}
	}
}

// Package-level dispatchers must route through the active backend.
func TestDispatchFollowsActiveBackend(t *testing.T) {
	withBackend(t, Optimized)
	if ActiveBackend().Name() != "optimized" {
		t.Fatal("Use failed")
	}
	rng := rand.New(rand.NewSource(18))
	a := randMat(rng, 5, 6)
	b := randMat(rng, 6, 4)
	c := New(5, 4)
	MatMul(c, a, b) // must not panic, runs on opt
	want := New(5, 4)
	Optimized.MatMul(want, a, b)
	if !bitwiseEqual(c, want) {
		t.Fatal("dispatch did not use the optimized backend")
	}
}

func TestExpShiftLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExpShift(make([]float32, 3), make([]float32, 4), 0)
}
