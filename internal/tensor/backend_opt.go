package tensor

import "sync"

// optBackend is the raw-speed implementation: fixed-width 4×-unrolled,
// register-tiled microkernels plus the fast float32 exp/tanh paths in
// fastmath.go. Panel widths are autotuned (see autotune.go) when the backend
// is activated through Use/SetBackend; until then the defaults below apply.
//
// Determinism: every tunable parameter is numerics-neutral. Each output
// element is reduced in exactly one accumulator, in strictly ascending
// reduction-index order, regardless of panel width, tile position within a
// worker chunk, or worker count — panels and tiles only reorder *independent*
// output elements relative to each other. Consequently:
//
//   - MatMul and TMatMul perform the identical per-element float operation
//     sequence as the reference backend (including the zero-skip branches),
//     so they match it bitwise.
//   - MatMulT and Dot split the reduction across 4 independent accumulator
//     chains for instruction-level parallelism, and the exp/softmax/GELU ops
//     use float32 polynomials — those differ from reference within a small
//     tolerance but are themselves exactly reproducible.
type optBackend struct {
	tuneOnce sync.Once
	// mmPanel is the output-column panel width for MatMul/TMatMul: columns
	// of B are processed in panels this wide so the active k×mmPanel slab of
	// B stays cache-resident across the chunk's row tiles.
	mmPanel int
	// mtPanel is the B-row panel width for MatMulT (output columns = rows of
	// B reused across the chunk's A rows).
	mtPanel int
}

func newOptBackend() *optBackend { return &optBackend{mmPanel: 256, mtPanel: 128} }

func (*optBackend) sealed()      {}
func (*optBackend) Name() string { return "optimized" }

func (o *optBackend) MatMul(c, a, b *Mat) {
	jp := o.mmPanel
	ParallelFor(a.Rows, func(lo, hi int) { o.matmulChunk(c, a, b, lo, hi, jp) })
}

// matmulChunk computes rows [lo,hi) of C = A·B with 2×4 output register
// tiles: per reduction step p the tile loads 4 B values and 2 A values and
// performs 8 multiply-adds entirely in registers (1.3 flops/load, versus the
// reference axpy's 0.5), storing each output element once after the full k
// loop. Wider tiles lose: 16 accumulators plus live operands exceed the 16
// scalar float registers and spill. The per-row `av != 0` branch reproduces
// the reference zero-skip contract exactly.
func (o *optBackend) matmulChunk(c, a, b *Mat, lo, hi, jPanel int) {
	k, m := a.Cols, b.Cols
	for j0 := 0; j0 < m; j0 += jPanel {
		j1 := min(j0+jPanel, m)
		i := lo
		for ; i+2 <= hi; i += 2 {
			// Re-slice to length k so the compiler can prove ai[p] in-bounds
			// for p < k and drop the per-iteration checks.
			ai0, ai1 := a.Row(i)[:k], a.Row(i + 1)[:k]
			ci0, ci1 := c.Row(i), c.Row(i+1)
			j := j0
			for ; j+4 <= j1; j += 4 {
				var c00, c01, c02, c03 float32
				var c10, c11, c12, c13 float32
				off := j
				p := 0
				// p unrolled ×2: per-element accumulation order stays
				// p-ascending (the p and p+1 contributions are added to the
				// same accumulator, in order), so numerics are unchanged.
				for ; p+2 <= k; p += 2 {
					bp := b.Data[off : off+4 : off+4]
					b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
					if av := ai0[p]; av != 0 {
						c00 += av * b0
						c01 += av * b1
						c02 += av * b2
						c03 += av * b3
					}
					if av := ai1[p]; av != 0 {
						c10 += av * b0
						c11 += av * b1
						c12 += av * b2
						c13 += av * b3
					}
					off += m
					bq := b.Data[off : off+4 : off+4]
					b0, b1, b2, b3 = bq[0], bq[1], bq[2], bq[3]
					if av := ai0[p+1]; av != 0 {
						c00 += av * b0
						c01 += av * b1
						c02 += av * b2
						c03 += av * b3
					}
					if av := ai1[p+1]; av != 0 {
						c10 += av * b0
						c11 += av * b1
						c12 += av * b2
						c13 += av * b3
					}
					off += m
				}
				for ; p < k; p++ {
					bp := b.Data[off : off+4 : off+4]
					b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
					if av := ai0[p]; av != 0 {
						c00 += av * b0
						c01 += av * b1
						c02 += av * b2
						c03 += av * b3
					}
					if av := ai1[p]; av != 0 {
						c10 += av * b0
						c11 += av * b1
						c12 += av * b2
						c13 += av * b3
					}
					off += m
				}
				ci0[j], ci0[j+1], ci0[j+2], ci0[j+3] = c00, c01, c02, c03
				ci1[j], ci1[j+1], ci1[j+2], ci1[j+3] = c10, c11, c12, c13
			}
			for ; j < j1; j++ { // column remainder: 2×1 tile
				var s0, s1 float32
				off := j
				for p := 0; p < k; p++ {
					bv := b.Data[off]
					if av := ai0[p]; av != 0 {
						s0 += av * bv
					}
					if av := ai1[p]; av != 0 {
						s1 += av * bv
					}
					off += m
				}
				ci0[j], ci1[j] = s0, s1
			}
		}
		for ; i < hi; i++ { // row remainder: 1×4 tiles + scalar corner
			ai := a.Row(i)
			ci := c.Row(i)
			j := j0
			for ; j+4 <= j1; j += 4 {
				var s0, s1, s2, s3 float32
				off := j
				for p := 0; p < k; p++ {
					if av := ai[p]; av != 0 {
						bp := b.Data[off : off+4 : off+4]
						s0 += av * bp[0]
						s1 += av * bp[1]
						s2 += av * bp[2]
						s3 += av * bp[3]
					}
					off += m
				}
				ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
			}
			for ; j < j1; j++ {
				var s float32
				off := j
				for p := 0; p < k; p++ {
					if av := ai[p]; av != 0 {
						s += av * b.Data[off]
					}
					off += m
				}
				ci[j] = s
			}
		}
	}
}

func (o *optBackend) TMatMul(c, a, b *Mat) {
	jp := o.mmPanel
	ParallelFor(c.Rows, func(lo, hi int) { o.tmatmulChunk(c, a, b, lo, hi, jp) })
}

// tmatmulChunk computes rows [lo,hi) of C = Aᵀ·B (rows of C index columns of
// A). Same 2×4 register tile as matmulChunk; here the 2 A values per step are
// contiguous (a.Data[p*cols+i : +2]), so both operand loads stream.
func (o *optBackend) tmatmulChunk(c, a, b *Mat, lo, hi, jPanel int) {
	rows, ac, m := a.Rows, a.Cols, b.Cols
	for j0 := 0; j0 < m; j0 += jPanel {
		j1 := min(j0+jPanel, m)
		i := lo
		for ; i+2 <= hi; i += 2 {
			ci0, ci1 := c.Row(i), c.Row(i+1)
			j := j0
			for ; j+4 <= j1; j += 4 {
				var c00, c01, c02, c03 float32
				var c10, c11, c12, c13 float32
				offA, offB := i, j
				for p := 0; p < rows; p++ {
					ap := a.Data[offA : offA+2 : offA+2]
					bp := b.Data[offB : offB+4 : offB+4]
					b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
					if av := ap[0]; av != 0 {
						c00 += av * b0
						c01 += av * b1
						c02 += av * b2
						c03 += av * b3
					}
					if av := ap[1]; av != 0 {
						c10 += av * b0
						c11 += av * b1
						c12 += av * b2
						c13 += av * b3
					}
					offA += ac
					offB += m
				}
				ci0[j], ci0[j+1], ci0[j+2], ci0[j+3] = c00, c01, c02, c03
				ci1[j], ci1[j+1], ci1[j+2], ci1[j+3] = c10, c11, c12, c13
			}
			for ; j < j1; j++ { // column remainder
				var s0, s1 float32
				offA, offB := i, j
				for p := 0; p < rows; p++ {
					bv := b.Data[offB]
					ap := a.Data[offA : offA+2 : offA+2]
					if av := ap[0]; av != 0 {
						s0 += av * bv
					}
					if av := ap[1]; av != 0 {
						s1 += av * bv
					}
					offA += ac
					offB += m
				}
				ci0[j], ci1[j] = s0, s1
			}
		}
		for ; i < hi; i++ { // row remainder
			ci := c.Row(i)
			j := j0
			for ; j+4 <= j1; j += 4 {
				var s0, s1, s2, s3 float32
				offA, offB := i, j
				for p := 0; p < rows; p++ {
					if av := a.Data[offA]; av != 0 {
						bp := b.Data[offB : offB+4 : offB+4]
						s0 += av * bp[0]
						s1 += av * bp[1]
						s2 += av * bp[2]
						s3 += av * bp[3]
					}
					offA += ac
					offB += m
				}
				ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
			}
			for ; j < j1; j++ {
				var s float32
				offA, offB := i, j
				for p := 0; p < rows; p++ {
					if av := a.Data[offA]; av != 0 {
						s += av * b.Data[offB]
					}
					offA += ac
					offB += m
				}
				ci[j] = s
			}
		}
	}
}

func (o *optBackend) MatMulT(c, a, b *Mat) {
	jp := o.mtPanel
	ParallelFor(a.Rows, func(lo, hi int) { o.matmulTChunk(c, a, b, lo, hi, jp) })
}

// matmulTChunk computes rows [lo,hi) of C = A·Bᵀ: each C row is the
// MatVecRows gemv of the B panel against the A row (C[i][j] = b_j·a_i;
// products commute bitwise). MatVecRows shares each loaded a element across
// four B-row chains and keeps the reference Dot's per-element reduction
// statement, so optimized MatMulT is bitwise equal to the reference.
func (o *optBackend) matmulTChunk(c, a, b *Mat, lo, hi, jPanel int) {
	mrows := b.Rows
	for j0 := 0; j0 < mrows; j0 += jPanel {
		j1 := min(j0+jPanel, mrows)
		for i := lo; i < hi; i++ {
			o.MatVecRows(c.Row(i)[j0:j1], b, a.Row(i), j0, j1)
		}
	}
}

// Dot uses 4 independent accumulator chains (combined (s0+s1)+(s2+s3)) so
// consecutive multiply-adds don't serialise on one register — within
// tolerance of, not bitwise equal to, the reference single-chain order.
func (*optBackend) Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy has no reduction, so the reference element order is already optimal
// and shared.
func (*optBackend) Axpy(alpha float32, x, y []float32) { axpy(alpha, x, y) }

// MatVecRows processes four rows per sweep so each loaded x element feeds
// four accumulator chains. The per-row reduction statement is the reference
// Dot's 4-way unroll verbatim (single chain, ascending index), so results are
// bitwise identical to the reference backend.
func (o *optBackend) MatVecRows(dst []float32, m *Mat, x []float32, lo, hi int) {
	n := m.Cols
	x = x[:n]
	r := lo
	for ; r+4 <= hi; r += 4 {
		r0 := m.Row(r)[:n]
		r1 := m.Row(r + 1)[:n]
		r2 := m.Row(r + 2)[:n]
		r3 := m.Row(r + 3)[:n]
		var s0, s1, s2, s3 float32
		p := 0
		for ; p+4 <= n; p += 4 {
			x0, x1, x2, x3 := x[p], x[p+1], x[p+2], x[p+3]
			s0 += r0[p]*x0 + r0[p+1]*x1 + r0[p+2]*x2 + r0[p+3]*x3
			s1 += r1[p]*x0 + r1[p+1]*x1 + r1[p+2]*x2 + r1[p+3]*x3
			s2 += r2[p]*x0 + r2[p+1]*x1 + r2[p+2]*x2 + r2[p+3]*x3
			s3 += r3[p]*x0 + r3[p+1]*x1 + r3[p+2]*x2 + r3[p+3]*x3
		}
		for ; p < n; p++ {
			xp := x[p]
			s0 += r0[p] * xp
			s1 += r1[p] * xp
			s2 += r2[p] * xp
			s3 += r3[p] * xp
		}
		dst[r-lo] = s0
		dst[r-lo+1] = s1
		dst[r-lo+2] = s2
		dst[r-lo+3] = s3
	}
	for ; r < hi; r++ {
		dst[r-lo] = Reference.Dot(m.Row(r), x)
	}
}

// WeightedRowSum fuses four axpy rows per sweep: one load/store of each acc
// element covers four weighted rows. The per-element expression is evaluated
// left to right, which is exactly the rounding order of four sequential axpy
// calls — bitwise identical to the reference backend.
func (*optBackend) WeightedRowSum(acc []float32, m *Mat, w []float32, lo, hi int) {
	n := m.Cols
	acc = acc[:n]
	r := lo
	for ; r+4 <= hi; r += 4 {
		r0 := m.Row(r)[:n]
		r1 := m.Row(r + 1)[:n]
		r2 := m.Row(r + 2)[:n]
		r3 := m.Row(r + 3)[:n]
		w0, w1, w2, w3 := w[r-lo], w[r-lo+1], w[r-lo+2], w[r-lo+3]
		for c := 0; c < n; c++ {
			acc[c] = acc[c] + w0*r0[c] + w1*r1[c] + w2*r2[c] + w3*r3[c]
		}
	}
	for ; r < hi; r++ {
		axpy(w[r-lo], m.Row(r), acc)
	}
}

func (*optBackend) SoftmaxRows(m *Mat) {
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			if len(row) == 0 {
				continue
			}
			mx := row[0]
			for _, v := range row[1:] {
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for j, v := range row {
				e := expf32(v - mx)
				row[j] = e
				sum += float64(e)
			}
			inv := float32(1.0 / sum)
			for j := range row {
				row[j] *= inv
			}
		}
	})
}

func (*optBackend) ExpShift(dst, src []float32, shift float32) {
	for i, v := range src {
		dst[i] = expf32(v + shift)
	}
}

func (*optBackend) BiasGELU(y, u *Mat, bias []float32) {
	ParallelFor(u.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ur := u.Row(i)
			yr := y.Row(i)
			for j := range ur {
				z := ur[j] + bias[j]
				ur[j] = z
				yr[j] = geluf32(z)
			}
		}
	})
}

func (*optBackend) BiasGELUGrad(dz *Mat, dbias []float32, z, dy *Mat) {
	ParallelFor(z.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zr := z.Row(i)
			dyr := dy.Row(i)
			dzr := dz.Row(i)
			for j := range zr {
				dzr[j] = dyr[j] * geluGradf32(zr[j])
			}
		}
	})
	ColSum(dbias, dz)
}
