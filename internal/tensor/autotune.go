package tensor

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Autotuning for the optimized backend, in the style of the measured sweeps
// internal/gpusim uses to pick simulator constants: enumerate a small
// candidate grid, time each candidate on a fixed synthetic workload, keep the
// argmin. It runs once per process, on first activation of the backend
// (Use/SetBackend), and costs a few tens of milliseconds.
//
// Only panel widths are tuned, and panels are numerics-neutral by
// construction (see optBackend): whatever the sweep picks — even if the
// timing noise picks differently on the next run — kernel outputs are
// bit-identical. Tuning affects speed only.

// panelCandidates is the width grid swept for each panelled kernel.
var panelCandidates = []int{64, 128, 256, 512}

// KernelTuning records the sweep for one kernel parameter.
type KernelTuning struct {
	Kernel     string    // kernel the panel width belongs to
	Candidates []int     // widths tried
	NsPerOp    []float64 // best-of-reps time per candidate, same order
	Chosen     int       // selected width (argmin)
}

// KernelSpeedup records one optimized-vs-reference measurement taken right
// after tuning, on the tuning workload.
type KernelSpeedup struct {
	Kernel  string
	RefNs   float64
	OptNs   float64
	Speedup float64 // RefNs / OptNs
}

// AutotuneReport is what the sweep measured and chose; surfaced through
// TuningReport for examples/autotuner and the -backend CLI paths.
type AutotuneReport struct {
	Tunings  []KernelTuning
	Speedups []KernelSpeedup
}

var tuneReport atomic.Pointer[AutotuneReport]

// TuningReport returns the optimized backend's autotune report, or ok=false
// if the backend has not been activated (and therefore not tuned) yet.
func TuningReport() (*AutotuneReport, bool) {
	r := tuneReport.Load()
	return r, r != nil
}

func (o *optBackend) ensureTuned() { o.tuneOnce.Do(o.tune) }

// tuneShape is the synthetic workload: output wide enough (m=512) that every
// candidate panel width partitions it differently, reduction deep enough
// (k=192) that the inner loops dominate the timing.
const (
	tuneN, tuneK, tuneM = 48, 192, 512
	tuneReps            = 3
)

func (o *optBackend) tune() {
	rng := rand.New(rand.NewSource(42))
	a := New(tuneN, tuneK)
	RandN(a, rng, 1)
	b := New(tuneK, tuneM)
	RandN(b, rng, 1)
	c := New(tuneN, tuneM)

	at := New(tuneK, tuneN) // Aᵀ-shaped operand for TMatMul (k rows)
	RandN(at, rng, 1)
	bt := New(tuneM, tuneK) // B with rows to dot against for MatMulT
	RandN(bt, rng, 1)
	ct := New(tuneN, tuneM)

	report := &AutotuneReport{}

	mm := o.sweep("MatMul", func(w int) { o.matmulChunk(c, a, b, 0, tuneN, w) })
	o.mmPanel = mm.Chosen
	report.Tunings = append(report.Tunings, mm)

	tm := o.sweep("TMatMul", func(w int) { o.tmatmulChunk(c, at, b, 0, tuneN, w) })
	// TMatMul shares mmPanel with MatMul (same tile, same B panel role); if
	// the sweeps disagree, MatMul wins — it dominates step time — but the
	// TMatMul sweep is still reported.
	report.Tunings = append(report.Tunings, tm)

	mt := o.sweep("MatMulT", func(w int) { o.matmulTChunk(ct, a, bt, 0, tuneN, w) })
	o.mtPanel = mt.Chosen
	report.Tunings = append(report.Tunings, mt)

	// Optimized-vs-reference on the same single-chunk workload, with the
	// panels just chosen. Reference kernels run through their public entry
	// (they have no chunk form); worker count is whatever the process set,
	// identical for both sides.
	ref := Reference.(*refBackend)
	report.Speedups = []KernelSpeedup{
		speedup("MatMul", func() { ref.MatMul(c, a, b) }, func() { o.MatMul(c, a, b) }),
		speedup("MatMulT", func() { ref.MatMulT(ct, a, bt) }, func() { o.MatMulT(ct, a, bt) }),
		speedup("TMatMul", func() { ref.TMatMul(c, at, b) }, func() { o.TMatMul(c, at, b) }),
		speedup("Dot", func() { _ = ref.Dot(a.Data, a.Data) }, func() { _ = o.Dot(a.Data, a.Data) }),
		speedup("ExpShift", func() { ref.ExpShift(c.Data, c.Data, 0) }, func() { o.ExpShift(c.Data, c.Data, 0) }),
	}

	tuneReport.Store(report)
}

// sweep times fn for every candidate width (best of tuneReps runs after one
// warmup) and returns the sweep record with the argmin chosen.
func (o *optBackend) sweep(kernel string, fn func(w int)) KernelTuning {
	t := KernelTuning{Kernel: kernel, Candidates: panelCandidates}
	best := -1
	var bestNs float64
	for _, w := range panelCandidates {
		fn(w) // warmup: page in operands, stabilise branch predictors
		ns := bestOf(tuneReps, func() { fn(w) })
		t.NsPerOp = append(t.NsPerOp, ns)
		if best < 0 || ns < bestNs {
			best, bestNs = w, ns
		}
	}
	t.Chosen = best
	return t
}

func speedup(kernel string, refFn, optFn func()) KernelSpeedup {
	refFn() // warmup both sides
	optFn()
	r := bestOf(tuneReps, refFn)
	o := bestOf(tuneReps, optFn)
	s := KernelSpeedup{Kernel: kernel, RefNs: r, OptNs: o}
	if o > 0 {
		s.Speedup = r / o
	}
	return s
}

func bestOf(reps int, fn func()) float64 {
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		fn()
		ns := float64(time.Since(start).Nanoseconds())
		if r == 0 || ns < best {
			best = ns
		}
	}
	return best
}
