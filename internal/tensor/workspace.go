package tensor

import (
	"math/bits"
	"sync"
)

// The workspace arena is the allocation substrate of the execution engine:
// every attention kernel and model layer that needs per-step scratch draws it
// from a Workspace instead of the Go heap. Backing storage is shared across
// all workspaces through size-bucketed sync.Pools (buckets are powers of
// two), so buffers released by one step — or one head worker — are reused by
// the next without garbage-collector pressure. This is the CPU analogue of
// the caching CUDA allocator the paper's training system leans on: steady-
// state training performs ~zero allocations per step.

// numBuckets covers slab capacities up to 2^33 floats (32 GiB), far beyond
// any realistic single-buffer request.
const numBuckets = 34

// slab is a pooled backing buffer. The Mat header is embedded so that
// Workspace.Get hands out matrices without any per-call heap allocation:
// header and storage recycle together.
type slab struct {
	mat    Mat
	data   []float32
	bucket int
}

// slabPools holds free slabs bucketed by ceil-log2 of their capacity.
var slabPools [numBuckets]sync.Pool

func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// takeSlab returns a slab whose capacity is at least n floats.
func takeSlab(n int) (*slab, bool) {
	b := bucketFor(n)
	if v := slabPools[b].Get(); v != nil {
		return v.(*slab), true
	}
	return &slab{data: make([]float32, 1<<b), bucket: b}, false
}

// Workspace is a per-step (or per-worker) arena of Mat and []float32
// buffers. Get/GetVec check buffers out; Put returns one early; Reset
// returns everything to the shared pools at a step boundary. A nil
// *Workspace is valid and falls back to plain heap allocation, so kernels
// can be written unconditionally against a workspace.
//
// A Workspace is safe for concurrent use, but the intended pattern is one
// workspace per worker goroutine (see model.Runtime), with Reset called
// between steps by a single owner.
type Workspace struct {
	mu   sync.Mutex
	held []*slab

	gets   int64
	hits   int64
	resets int64
}

// NewWorkspace constructs an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get checks out a zeroed rows×cols matrix. Kernels may rely on zero
// initialisation exactly as they do with New.
func (w *Workspace) Get(rows, cols int) *Mat {
	m := w.GetUninit(rows, cols)
	if w != nil { // New already zeroes on the nil-workspace path
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	return m
}

// GetUninit checks out a rows×cols matrix WITHOUT zeroing it — the contents
// are whatever the recycled slab last held. Use only when every element is
// about to be overwritten (matmul outputs, copy targets); accumulator
// buffers must use Get.
func (w *Workspace) GetUninit(rows, cols int) *Mat {
	if w == nil {
		return New(rows, cols)
	}
	n := rows * cols
	s, hit := takeSlab(n)
	s.mat = Mat{Rows: rows, Cols: cols, Data: s.data[:n]}
	w.mu.Lock()
	w.held = append(w.held, s)
	w.gets++
	if hit {
		w.hits++
	}
	w.mu.Unlock()
	return &s.mat
}

// GetVec checks out a zeroed length-n float slice.
func (w *Workspace) GetVec(n int) []float32 {
	if w == nil {
		return make([]float32, n)
	}
	m := w.Get(1, n)
	return m.Data
}

// Put returns one checked-out matrix to the shared pools before Reset. It is
// a no-op for matrices the workspace does not own (including when w is nil),
// so callers can Put unconditionally. The held list is scanned newest-first:
// callers put back what they just took, so the scan is O(1) in practice.
func (w *Workspace) Put(m *Mat) {
	if w == nil || m == nil {
		return
	}
	w.mu.Lock()
	for i := len(w.held) - 1; i >= 0; i-- {
		s := w.held[i]
		if &s.mat == m {
			last := len(w.held) - 1
			w.held[i] = w.held[last]
			w.held[last] = nil
			w.held = w.held[:last]
			w.mu.Unlock()
			s.mat = Mat{}
			slabPools[s.bucket].Put(s)
			return
		}
	}
	w.mu.Unlock()
}

// Reset returns every checked-out buffer to the shared pools. All matrices
// and slices previously handed out become invalid; callers must not hold
// them across a Reset. The tracking slice keeps its capacity, so a warmed
// workspace performs no allocations at all in steady state. Safe on a nil
// workspace.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.mu.Lock()
	for i, s := range w.held {
		s.mat = Mat{}
		slabPools[s.bucket].Put(s)
		w.held[i] = nil
	}
	w.held = w.held[:0]
	w.resets++
	w.mu.Unlock()
}

// WorkspaceStats reports arena behaviour for benchmarks and tuning.
type WorkspaceStats struct {
	// Gets counts buffer checkouts since construction.
	Gets int64
	// PoolHits counts checkouts served from the shared pools (no heap
	// allocation). Gets − PoolHits is the number of cold allocations.
	PoolHits int64
	// Resets counts step boundaries.
	Resets int64
	// InUse is the number of currently checked-out buffers.
	InUse int
	// HeldBytes is the capacity of currently checked-out backing storage.
	HeldBytes int64
}

// Stats snapshots the workspace counters. Safe on a nil workspace.
func (w *Workspace) Stats() WorkspaceStats {
	if w == nil {
		return WorkspaceStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WorkspaceStats{Gets: w.gets, PoolHits: w.hits, Resets: w.resets, InUse: len(w.held)}
	for _, s := range w.held {
		st.HeldBytes += int64(cap(s.data)) * 4
	}
	return st
}
