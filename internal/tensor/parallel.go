package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds kernel parallelism; it defaults to GOMAXPROCS and can be
// lowered for deterministic single-threaded runs in tests.
var (
	workerMu   sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetWorkers sets the number of goroutines used by parallel kernels.
// n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetWorkers(n int) int {
	workerMu.Lock()
	defer workerMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers reports the current kernel parallelism.
func Workers() int {
	workerMu.RLock()
	defer workerMu.RUnlock()
	return maxWorkers
}

// ParallelFor splits [0, n) into contiguous chunks and runs body(lo, hi) on
// each chunk concurrently. body must not panic. It is the single scheduling
// primitive used by all kernels, mirroring a CUDA grid launch. (Implemented
// directly rather than via ParallelForWorker so the single-worker fast path
// allocates nothing — no wrapper closure escapes.)
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := WorkerCount(n)
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// WorkerCount reports how many chunks ParallelFor/ParallelForWorker will use
// for an n-sized loop, letting callers pre-provision per-worker scratch.
func WorkerCount(n int) int {
	w := Workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelForWorker is ParallelFor with the chunk's worker slot exposed:
// body(worker, lo, hi) receives a dense id in [0, WorkerCount(n)), so kernels
// can index pre-allocated per-worker scratch (e.g. workspace-pooled tiles)
// instead of allocating inside the loop body.
func ParallelForWorker(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := WorkerCount(n)
	if w <= 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	worker := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			body(worker, lo, hi)
		}(worker, lo, hi)
		worker++
	}
	wg.Wait()
}
