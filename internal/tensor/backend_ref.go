package tensor

import "math"

// blockPanel is the shared-operand panel height of the reference blocked
// matmul kernels: the loops over the reduction (or broadcast) dimension are
// tiled so that a panel of blockPanel rows of the shared operand stays
// cache-resident while every row of the worker's chunk consumes it. 128 rows
// × typical hidden widths keeps a panel well inside L2 without starving L1.
const blockPanel = 128

// refBackend is the bitwise-pinned reference implementation: the
// panel-blocked kernels the repo shipped before backends existed, moved here
// verbatim. Training defaults to it; its per-output-element summation order
// (p strictly ascending, av==0 skipped) is part of the package's determinism
// contract and must never change.
type refBackend struct{}

func (refBackend) sealed()      {}
func (refBackend) Name() string { return "reference" }

// MatMul computes C = A·B. The kernel is parallelised over rows of A and
// blocked over panels of B: for each panel of blockPanel rows of B, every row
// of the chunk streams the panel with an ikj/axpy inner loop, so the panel is
// read from cache (hi−lo) times instead of main memory. Per-element summation
// order is unchanged from the unblocked kernel (p strictly ascending per
// output row), so results are bitwise identical.
func (refBackend) MatMul(c, a, b *Mat) {
	n, k := a.Rows, a.Cols
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for x := range ci {
				ci[x] = 0
			}
		}
		for p0 := 0; p0 < k; p0 += blockPanel {
			p1 := p0 + blockPanel
			if p1 > k {
				p1 = k
			}
			for i := lo; i < hi; i++ {
				ai := a.Row(i)
				ci := c.Row(i)
				for p := p0; p < p1; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					axpy(av, b.Row(p), ci)
				}
			}
		}
	})
}

// MatMulT computes C = A·Bᵀ. The innermost loop is a dot product over
// contiguous rows of both A and B — the cache-friendly orientation for
// attention scores Q·Kᵀ — and the j loop is blocked into panels of B rows
// reused across the chunk's A rows.
func (r refBackend) MatMulT(c, a, b *Mat) {
	m := b.Rows
	ParallelFor(a.Rows, func(lo, hi int) {
		for j0 := 0; j0 < m; j0 += blockPanel {
			j1 := j0 + blockPanel
			if j1 > m {
				j1 = m
			}
			for i := lo; i < hi; i++ {
				ai := a.Row(i)
				ci := c.Row(i)
				for j := j0; j < j1; j++ {
					ci[j] = r.Dot(ai, b.Row(j))
				}
			}
		}
	})
}

// TMatMul computes C = Aᵀ·B. Parallelised over columns of A (rows of C) and
// blocked over panels of A/B rows so both operand panels stay cache-resident
// across the chunk. Summation order per output element is unchanged
// (p strictly ascending), keeping results bitwise identical.
func (refBackend) TMatMul(c, a, b *Mat) {
	ParallelFor(c.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Row(i)
			for x := range ci {
				ci[x] = 0
			}
		}
		for p0 := 0; p0 < a.Rows; p0 += blockPanel {
			p1 := p0 + blockPanel
			if p1 > a.Rows {
				p1 = a.Rows
			}
			for i := lo; i < hi; i++ {
				ci := c.Row(i)
				for p := p0; p < p1; p++ {
					av := a.Data[p*a.Cols+i]
					if av == 0 {
						continue
					}
					axpy(av, b.Row(p), ci)
				}
			}
		}
	})
}

// Dot returns the inner product of two equal-length slices: 4-way unrolled,
// single accumulator, strictly ascending index order.
func (refBackend) Dot(a, b []float32) float32 {
	var s float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func (refBackend) Axpy(alpha float32, x, y []float32) { axpy(alpha, x, y) }

// axpy computes y += alpha*x. Package-private so both backends' remainder
// paths can share the exact reference element order.
func axpy(alpha float32, x, y []float32) {
	n := len(y)
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

func (b refBackend) MatVecRows(dst []float32, m *Mat, x []float32, lo, hi int) {
	for r := lo; r < hi; r++ {
		dst[r-lo] = b.Dot(m.Row(r), x)
	}
}

func (refBackend) WeightedRowSum(acc []float32, m *Mat, w []float32, lo, hi int) {
	for r := lo; r < hi; r++ {
		axpy(w[r-lo], m.Row(r), acc)
	}
}

func (refBackend) SoftmaxRows(m *Mat) {
	ParallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			SoftmaxInPlace(m.Row(i))
		}
	})
}

func (refBackend) ExpShift(dst, src []float32, shift float32) {
	for i, v := range src {
		dst[i] = float32(math.Exp(float64(v + shift)))
	}
}

// BiasGELU: z = u + bias in place, y = GELU(z), one pass. The element order
// and the float64 GELU polynomial are identical to the unfused
// AddRowVec + nn.GELU.Forward sequence, so reference results are bitwise
// unchanged by the fusion.
func (refBackend) BiasGELU(y, u *Mat, bias []float32) {
	ParallelFor(u.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ur := u.Row(i)
			yr := y.Row(i)
			for j := range ur {
				z := ur[j] + bias[j]
				ur[j] = z
				yr[j] = float32(GELU(float64(z)))
			}
		}
	})
}

// BiasGELUGrad: dz = dy ⊙ GELU'(z) in parallel, then a serial row-ascending
// column-sum of dz into dbias — the same accumulation order as the unfused
// ColSum, so bias gradients stay worker-count independent and bitwise equal
// to the pre-fusion path.
func (refBackend) BiasGELUGrad(dz *Mat, dbias []float32, z, dy *Mat) {
	ParallelFor(z.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			zr := z.Row(i)
			dyr := dy.Row(i)
			dzr := dz.Row(i)
			for j := range zr {
				dzr[j] = dyr[j] * float32(GELUGrad(float64(zr[j])))
			}
		}
	})
	ColSum(dbias, dz)
}
