package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape %v len=%d", m, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zero-initialised")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At=%v", m.At(1, 2))
	}
	if m.Row(1)[2] != 7 {
		t.Fatal("Row view broken")
	}
	m.Row(0)[0] = 3
	if m.At(0, 0) != 3 {
		t.Fatal("Row must share storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("bad T shape %v", mt)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(7, 5)
	RandN(m, rng, 1)
	if !m.T().T().Equal(m, 0) {
		t.Fatal("(Mᵀ)ᵀ != M")
	}
}

func TestSliceRows(t *testing.T) {
	m := FromSlice(4, 2, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 3 || s.At(1, 1) != 6 {
		t.Fatalf("bad slice: %+v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must be a view")
	}
}

func TestSliceRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 3).SliceRows(2, 5)
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestNormAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, -4})
	if math.Abs(m.Norm()-5) > 1e-6 {
		t.Fatalf("Norm=%v", m.Norm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs=%v", m.MaxAbs())
	}
}

func TestEqualTolerance(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{1.0005, 2})
	if !a.Equal(b, 1e-3) {
		t.Fatal("should be equal within tol")
	}
	if a.Equal(b, 1e-5) {
		t.Fatal("should differ at tight tol")
	}
	if a.Equal(New(2, 1), 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestBytes(t *testing.T) {
	if New(10, 10).Bytes() != 400 {
		t.Fatal("Bytes wrong")
	}
}

// Property: matrix addition commutes.
func TestAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := New(4, 5), New(4, 5)
		RandN(a, rng, 1)
		RandN(b, rng, 1)
		c1, c2 := New(4, 5), New(4, 5)
		Add(c1, a, b)
		Add(c2, b, a)
		return c1.Equal(c2, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFillAndZero(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	for _, v := range m.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}
