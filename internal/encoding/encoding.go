// Package encoding computes the graph structural encodings that graph
// transformers add to the vanilla Transformer: Graphormer's degree
// (centrality) encoding indices, shortest-path-distance (SPD) bias buckets,
// and Laplacian positional encodings for GT (Dwivedi–Bresson). The learnable
// tables that consume these indices live in internal/nn; this package is pure
// precomputation, which is exactly the part the paper charges to
// "pre-processing cost" (§IV-E).
package encoding

import (
	"math"
	"math/rand"

	"torchgt/internal/graph"
	"torchgt/internal/tensor"
)

// MaxDegreeBucket is the default clip for degree encodings: degrees are
// bucketed into [0, MaxDegreeBucket] with everything larger clipped, matching
// Graphormer's practice on skewed graphs.
const MaxDegreeBucket = 63

// DegreeBuckets returns per-node (in, out) degree bucket indices, clipped to
// maxBucket.
func DegreeBuckets(g *graph.Graph, maxBucket int) (in, out []int32) {
	in = g.InDegrees()
	out = make([]int32, g.N)
	for i := 0; i < g.N; i++ {
		out[i] = int32(g.Degree(i))
	}
	clip := func(s []int32) {
		for i, v := range s {
			if v > int32(maxBucket) {
				s[i] = int32(maxBucket)
			}
		}
	}
	clip(in)
	clip(out)
	return in, out
}

// SPDTable holds bucketed shortest-path distances for a (small) graph.
// Bucket values are in [0, MaxDist+1], where MaxDist+1 means "farther than
// MaxDist or unreachable".
type SPDTable struct {
	N       int
	MaxDist int
	Dist    [][]int32
}

// NumBuckets returns the number of distinct bias buckets (0..MaxDist+1).
func (t *SPDTable) NumBuckets() int { return t.MaxDist + 2 }

// ComputeSPD runs capped all-pairs BFS; intended for graph-level tasks where
// each graph is small (tens to thousands of nodes).
func ComputeSPD(g *graph.Graph, maxDist int) *SPDTable {
	return &SPDTable{N: g.N, MaxDist: maxDist, Dist: g.AllPairsSPD(maxDist)}
}

// EdgeSPDBuckets returns, for each stored edge of g, the SPD bucket of its
// endpoint pair under a sparse attention pattern: self-loops get bucket 0,
// direct edges bucket 1. This is the large-graph path where all-pairs BFS is
// unaffordable and the attention pattern only contains graph edges anyway.
func EdgeSPDBuckets(g *graph.Graph) []int32 {
	out := make([]int32, g.NumEdges())
	idx := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) == v {
				out[idx] = 0
			} else {
				out[idx] = 1
			}
			idx++
		}
	}
	return out
}

// LaplacianPE computes m-dimensional Laplacian positional encodings: the
// eigenvectors of the symmetric normalised Laplacian associated with the
// smallest non-trivial eigenvalues, approximated by orthogonal power
// iteration on (2I − L) (whose largest eigenpairs are L's smallest). Signs
// are randomised per GT's training recipe.
func LaplacianPE(g *graph.Graph, m, iters int, rng *rand.Rand) *tensor.Mat {
	n := g.N
	if m > n {
		m = n
	}
	pe := tensor.New(n, m)
	if n == 0 || m == 0 {
		return pe
	}
	// D^{-1/2}
	dinv := make([]float32, n)
	for i := 0; i < n; i++ {
		d := g.Degree(i)
		if d > 0 {
			dinv[i] = float32(1.0 / math.Sqrt(float64(d)))
		}
	}
	// matvec y = (2I - L) x = x + D^{-1/2} A D^{-1/2} x
	matvec := func(dst, x []float32) {
		for i := 0; i < n; i++ {
			var s float32
			for _, v := range g.Neighbors(i) {
				s += dinv[i] * dinv[v] * x[v]
			}
			dst[i] = x[i] + s
		}
	}
	// block power iteration with Gram–Schmidt; include the trivial
	// eigenvector slot (m+1 vectors) and drop it at the end.
	k := m + 1
	vecs := make([][]float32, k)
	for j := range vecs {
		vecs[j] = make([]float32, n)
		for i := range vecs[j] {
			vecs[j][i] = float32(rng.NormFloat64())
		}
	}
	tmp := make([]float32, n)
	orthonormalise := func() {
		for j := 0; j < k; j++ {
			for l := 0; l < j; l++ {
				dot := tensor.Dot(vecs[j], vecs[l])
				tensor.Axpy(-dot, vecs[l], vecs[j])
			}
			norm := float32(math.Sqrt(float64(tensor.Dot(vecs[j], vecs[j]))))
			if norm < 1e-12 {
				for i := range vecs[j] {
					vecs[j][i] = float32(rng.NormFloat64())
				}
				norm = float32(math.Sqrt(float64(tensor.Dot(vecs[j], vecs[j]))))
			}
			inv := 1 / norm
			for i := range vecs[j] {
				vecs[j][i] *= inv
			}
		}
	}
	orthonormalise()
	for it := 0; it < iters; it++ {
		for j := 0; j < k; j++ {
			matvec(tmp, vecs[j])
			copy(vecs[j], tmp)
		}
		orthonormalise()
	}
	// vecs[0] converges to the trivial (largest) eigenvector; PE uses 1..m.
	for j := 0; j < m; j++ {
		sign := float32(1)
		if rng.Intn(2) == 1 {
			sign = -1
		}
		for i := 0; i < n; i++ {
			pe.Set(i, j, sign*vecs[j+1][i])
		}
	}
	return pe
}
