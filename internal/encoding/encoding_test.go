package encoding

import (
	"math"
	"math/rand"
	"testing"

	"torchgt/internal/graph"
	"torchgt/internal/tensor"
)

func TestDegreeBuckets(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}}, false)
	in, out := DegreeBuckets(g, 63)
	if out[0] != 2 || out[1] != 0 {
		t.Fatalf("out=%v", out)
	}
	if in[1] != 1 || in[0] != 0 {
		t.Fatalf("in=%v", in)
	}
}

func TestDegreeBucketsClipped(t *testing.T) {
	var edges []graph.Edge
	for i := 1; i < 20; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
	}
	g := graph.FromEdges(20, edges, false)
	_, out := DegreeBuckets(g, 10)
	if out[0] != 10 {
		t.Fatalf("expected clip to 10, got %d", out[0])
	}
}

func TestComputeSPDBuckets(t *testing.T) {
	// path 0-1-2-3
	var edges []graph.Edge
	for i := 0; i < 3; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	g := graph.FromEdges(4, edges, true)
	spd := ComputeSPD(g, 2)
	if spd.NumBuckets() != 4 {
		t.Fatalf("buckets=%d", spd.NumBuckets())
	}
	if spd.Dist[0][0] != 0 || spd.Dist[0][1] != 1 || spd.Dist[0][2] != 2 {
		t.Fatal("distances wrong")
	}
	if spd.Dist[0][3] != 3 { // capped to MaxDist+1
		t.Fatalf("cap wrong: %d", spd.Dist[0][3])
	}
}

func TestEdgeSPDBuckets(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, true).WithSelfLoops()
	buckets := EdgeSPDBuckets(g)
	if len(buckets) != g.NumEdges() {
		t.Fatal("length mismatch")
	}
	idx := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			want := int32(1)
			if int32(u) == v {
				want = 0
			}
			if buckets[idx] != want {
				t.Fatalf("bucket (%d,%d)=%d want %d", u, v, buckets[idx], want)
			}
			idx++
		}
	}
}

func TestLaplacianPEShapeAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(60, 0.15, rng)
	pe := LaplacianPE(g, 4, 50, rng)
	if pe.Rows != 60 || pe.Cols != 4 {
		t.Fatalf("shape %v", pe)
	}
	// columns should be near-orthonormal
	for a := 0; a < 4; a++ {
		col := make([]float32, 60)
		for i := 0; i < 60; i++ {
			col[i] = pe.At(i, a)
		}
		norm := tensor.Dot(col, col)
		if math.Abs(float64(norm)-1) > 1e-3 {
			t.Fatalf("col %d norm %v", a, norm)
		}
		for b := a + 1; b < 4; b++ {
			col2 := make([]float32, 60)
			for i := 0; i < 60; i++ {
				col2[i] = pe.At(i, b)
			}
			if d := tensor.Dot(col, col2); math.Abs(float64(d)) > 1e-2 {
				t.Fatalf("cols %d,%d not orthogonal: %v", a, b, d)
			}
		}
	}
}

func TestLaplacianPESecondVectorSeparatesComponentsish(t *testing.T) {
	// two dense clusters joined by one edge: the Fiedler-like vector should
	// assign (mostly) opposite signs to the two clusters.
	rng := rand.New(rand.NewSource(2))
	var edges []graph.Edge
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			edges = append(edges, graph.Edge{U: int32(15 + i), V: int32(15 + j)})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 15})
	g := graph.FromEdges(30, edges, true)
	pe := LaplacianPE(g, 1, 200, rng)
	agreeA, agreeB := 0, 0
	for i := 0; i < 15; i++ {
		if (pe.At(i, 0) > 0) == (pe.At(0, 0) > 0) {
			agreeA++
		}
		if (pe.At(15+i, 0) > 0) == (pe.At(15, 0) > 0) {
			agreeB++
		}
	}
	if agreeA < 13 || agreeB < 13 {
		t.Fatalf("fiedler separation weak: %d %d", agreeA, agreeB)
	}
	if (pe.At(0, 0) > 0) == (pe.At(15, 0) > 0) {
		t.Fatal("clusters should take opposite signs")
	}
}

func TestLaplacianPEEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	empty := graph.FromEdges(0, nil, false)
	pe := LaplacianPE(empty, 4, 10, rng)
	if pe.Rows != 0 {
		t.Fatal("empty graph PE should be empty")
	}
	tiny := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, true)
	pe = LaplacianPE(tiny, 8, 10, rng) // m > n clamps
	if pe.Cols != 2 {
		t.Fatalf("m should clamp to n: cols=%d", pe.Cols)
	}
}
