// Package sample implements the deterministic ego-graph sampler and the
// bounded prefetching pipeline that feed sampled training (and the serving
// ego-context builder's warm path) from any graph.NodeSource — an in-memory
// NodeDataset or a disk-resident shard view alike.
//
// Determinism is the organising constraint: every random choice a sample
// makes is drawn from an RNG derived purely from (dataset seed, sample
// serial, target node), never from shared mutable state. Two consequences,
// both pinned by tests: the same (seed, serial, target) yields a
// bitwise-identical sample whether the source is materialised or streamed
// from shards, and whether the pipeline runs with 1 worker or 8.
package sample

import (
	"math/bits"

	"torchgt/internal/encoding"
	"torchgt/internal/graph"
	"torchgt/internal/tensor"
)

// Config sizes the sampler: the same knobs as the ego trainer.
type Config struct {
	Hops    int // neighbourhood radius (default 2)
	MaxSize int // max ego-graph size incl. target (default 32)
	Seed    int64
	Workers int // pipeline concurrency; ≤1 runs synchronously
}

func (c Config) withDefaults() Config {
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 32
	}
	return c
}

// Sampler draws capped ego-graphs around target nodes from a NodeSource.
// The sampler itself is stateless between samples; all per-sample scratch
// lives in a Context, so one Sampler serves many workers.
type Sampler struct {
	src graph.NodeSource
	cfg Config
}

// New builds a sampler over src.
func New(src graph.NodeSource, cfg Config) *Sampler {
	return &Sampler{src: src, cfg: cfg.withDefaults()}
}

// Source returns the sampler's backing source.
func (s *Sampler) Source() graph.NodeSource { return s.src }

// Config returns the sampler's effective (defaulted) configuration.
func (s *Sampler) Config() Config { return s.cfg }

// Context is one sample's outputs plus the reused scratch that keeps the
// steady-state sampling path allocation-light. Contexts are pooled by the
// pipeline; consumers must not retain any field past their callback.
type Context struct {
	Target int32
	Serial uint64
	// Nodes are the sampled ego nodes in discovery order (storage rows;
	// the target is always position 0).
	Nodes []int32
	// Sub is the induced subgraph over Nodes (local IDs follow Nodes order).
	Sub *graph.Graph
	// X holds one feature row per ego node.
	X *tensor.Mat
	// Label is the target node's class.
	Label int32
	// DegIn and DegOut are the local degree-bucket indices of Sub, clipped
	// at encoding.MaxDegreeBucket.
	DegIn, DegOut []int32

	seen     map[int32]struct{}
	frontier []int32
	next     []int32
	adj      []int32
	order    []int32
	featOrd  []int32
	rng      rngState
}

// NewContext allocates a context sized for the sampler's configuration.
func (s *Sampler) NewContext() *Context {
	m := s.cfg.MaxSize
	return &Context{
		Nodes:   make([]int32, 0, m),
		X:       tensor.New(m, s.src.FeatDim()),
		DegIn:   make([]int32, 0, m),
		DegOut:  make([]int32, 0, m),
		seen:    make(map[int32]struct{}, 2*m),
		featOrd: make([]int32, 0, m),
	}
}

// Sample fills c with the ego-graph of target. The walk is the truncated
// BFS with per-hop neighbour shuffling of the original in-memory ego
// trainer; its RNG is re-seeded from (cfg.Seed, serial, target) so the
// result depends on nothing but those three values.
func (s *Sampler) Sample(c *Context, target int32, serial uint64) {
	c.Target, c.Serial, c.rng = target, serial, seedRNG(s.cfg.Seed, serial, target)
	for k := range c.seen {
		delete(c.seen, k)
	}
	c.seen[target] = struct{}{}
	c.Nodes = append(c.Nodes[:0], target)
	c.frontier = append(c.frontier[:0], target)
	for hop := 0; hop < s.cfg.Hops && len(c.Nodes) < s.cfg.MaxSize; hop++ {
		c.next = c.next[:0]
		for _, u := range c.frontier {
			c.adj = s.src.AppendNeighbors(c.adj, u)
			c.order = c.order[:0]
			for i := range c.adj {
				c.order = append(c.order, int32(i))
			}
			for i := len(c.order) - 1; i > 0; i-- {
				j := c.rng.intn(i + 1)
				c.order[i], c.order[j] = c.order[j], c.order[i]
			}
			for _, oi := range c.order {
				v := c.adj[oi]
				if _, dup := c.seen[v]; dup || len(c.Nodes) >= s.cfg.MaxSize {
					continue
				}
				c.seen[v] = struct{}{}
				c.Nodes = append(c.Nodes, v)
				c.next = append(c.next, v)
			}
		}
		c.frontier, c.next = c.next, c.frontier
	}
	c.Sub = graph.InducedSubgraphOf(s.src, c.Nodes, c.adj)
	c.fillFeatures(s.src)
	c.Label = s.src.Label(target)
	c.fillDegrees()
}

// fillFeatures copies one feature row per ego node, visiting rows in
// ascending storage order — on a sharded source consecutive rows share cache
// blocks, so the sorted visit coalesces the per-shard reads.
func (c *Context) fillFeatures(src graph.NodeSource) {
	c.X.Rows = len(c.Nodes)
	c.X.Data = c.X.Data[:c.X.Rows*c.X.Cols]
	c.featOrd = c.featOrd[:0]
	for i := range c.Nodes {
		c.featOrd = append(c.featOrd, int32(i))
	}
	// insertion sort by storage row (≤MaxSize entries, no closure allocs)
	for i := 1; i < len(c.featOrd); i++ {
		p := c.featOrd[i]
		j := i - 1
		for j >= 0 && c.Nodes[c.featOrd[j]] > c.Nodes[p] {
			c.featOrd[j+1] = c.featOrd[j]
			j--
		}
		c.featOrd[j+1] = p
	}
	for _, pos := range c.featOrd {
		src.CopyFeatureRow(c.X.Row(int(pos)), c.Nodes[pos])
	}
}

// fillDegrees computes the local degree buckets of Sub — the same values as
// encoding.DegreeBuckets(Sub, MaxDegreeBucket), into reused slices.
func (c *Context) fillDegrees() {
	n := c.Sub.N
	c.DegIn = append(c.DegIn[:0], make([]int32, n)...)
	c.DegOut = c.DegOut[:0]
	for _, v := range c.Sub.ColIdx {
		c.DegIn[v]++
	}
	clip := int32(encoding.MaxDegreeBucket)
	for i := 0; i < n; i++ {
		if c.DegIn[i] > clip {
			c.DegIn[i] = clip
		}
		d := int32(c.Sub.Degree(i))
		if d > clip {
			d = clip
		}
		c.DegOut = append(c.DegOut, d)
	}
}

// rngState is a splitmix64 stream: allocation-free, with a fixed
// cross-platform sequence (the derivation is part of the determinism
// contract — changing it changes every sampled ego-graph).
type rngState struct{ s uint64 }

const (
	smGamma = 0x9e3779b97f4a7c15
	smMixA  = 0xbf58476d1ce4e5b9
	smMixB  = 0x94d049bb133111eb
)

func splitmix64(x uint64) uint64 {
	x += smGamma
	x = (x ^ (x >> 30)) * smMixA
	x = (x ^ (x >> 27)) * smMixB
	return x ^ (x >> 31)
}

// seedRNG derives the per-sample stream from (seed, serial, target) alone.
func seedRNG(seed int64, serial uint64, target int32) rngState {
	s := splitmix64(uint64(seed))
	s = splitmix64(s ^ serial)
	s = splitmix64(s ^ uint64(uint32(target)))
	return rngState{s: s}
}

func (r *rngState) next() uint64 {
	r.s += smGamma
	x := r.s
	x = (x ^ (x >> 30)) * smMixA
	x = (x ^ (x >> 27)) * smMixB
	return x ^ (x >> 31)
}

// intn returns a uniform value in [0, n) via Lemire's multiply-shift
// reduction (no division, no rejection loop — a negligible, deterministic
// bias at these ranges).
func (r *rngState) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}
