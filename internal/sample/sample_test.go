package sample

import (
	"path/filepath"
	"runtime"
	"testing"

	"torchgt/internal/data/shard"
	"torchgt/internal/graph"
)

func testSource(t testing.TB) (*graph.NodeDataset, graph.NodeSource) {
	t.Helper()
	ds, err := graph.LoadNodeScaled("arxiv-sim", 600, 13)
	if err != nil {
		t.Fatalf("LoadNodeScaled: %v", err)
	}
	return ds, graph.SourceOf(ds)
}

// snapshot is a deep copy of a Context's outputs, safe to retain past the
// pipeline callback.
type snapshot struct {
	target, label  int32
	serial         uint64
	nodes          []int32
	rowPtr, colIdx []int32
	x              []float32
	degIn, degOut  []int32
}

func snap(c *Context) snapshot {
	return snapshot{
		target: c.Target, label: c.Label, serial: c.Serial,
		nodes:  append([]int32(nil), c.Nodes...),
		rowPtr: append([]int32(nil), c.Sub.RowPtr...),
		colIdx: append([]int32(nil), c.Sub.ColIdx...),
		x:      append([]float32(nil), c.X.Data[:c.X.Rows*c.X.Cols]...),
		degIn:  append([]int32(nil), c.DegIn...),
		degOut: append([]int32(nil), c.DegOut...),
	}
}

func equalSnap(a, b snapshot) bool {
	if a.target != b.target || a.label != b.label || a.serial != b.serial {
		return false
	}
	eq32 := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq32(a.nodes, b.nodes) || !eq32(a.rowPtr, b.rowPtr) || !eq32(a.colIdx, b.colIdx) ||
		!eq32(a.degIn, b.degIn) || !eq32(a.degOut, b.degOut) {
		return false
	}
	if len(a.x) != len(b.x) {
		return false
	}
	for i := range a.x {
		if a.x[i] != b.x[i] {
			return false
		}
	}
	return true
}

func runPipeline(t *testing.T, src graph.NodeSource, workers int, targets []int32) []snapshot {
	t.Helper()
	s := New(src, Config{Hops: 2, MaxSize: 24, Seed: 42, Workers: workers})
	var got []snapshot
	if err := NewPipeline(s).Each(targets, 100, func(c *Context) {
		got = append(got, snap(c))
	}); err != nil {
		t.Fatalf("workers=%d: Each: %v", workers, err)
	}
	return got
}

// TestPipelineDeterministicAcrossWorkers pins the core contract: the sampled
// ego-contexts are bitwise-identical and delivered in submission order for
// every worker count.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	ds, src := testSource(t)
	targets := make([]int32, 200)
	for i := range targets {
		targets[i] = int32((i * 7) % ds.G.N)
	}
	ref := runPipeline(t, src, 0, targets)
	if len(ref) != len(targets) {
		t.Fatalf("delivered %d contexts, want %d", len(ref), len(targets))
	}
	for i, g := range ref {
		if g.target != targets[i] || g.serial != 100+uint64(i) {
			t.Fatalf("out-of-order delivery at %d: target %d serial %d", i, g.target, g.serial)
		}
	}
	for _, workers := range []int{1, 2, 4, 7} {
		got := runPipeline(t, src, workers, targets)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d delivered %d contexts, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if !equalSnap(ref[i], got[i]) {
				t.Fatalf("workers=%d: context %d differs from synchronous run", workers, i)
			}
		}
	}
}

// TestPipelineOrderUnderContention stresses the delivery-order invariant
// with far more workers than runnable threads, so workers are routinely
// descheduled between claiming a sample and sending it. A pipeline that
// claimed the index before acquiring a pooled context could be lapped here
// (another worker wrapping the slot ring while one claim is stalled) and
// deliver a later sample in an earlier position.
func TestPipelineOrderUnderContention(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	ds, src := testSource(t)
	targets := make([]int32, 20000)
	for i := range targets {
		targets[i] = int32((i * 13) % ds.G.N)
	}
	s := New(src, Config{Hops: 1, MaxSize: 8, Seed: 5, Workers: 16})
	i := 0
	err := NewPipeline(s).Each(targets, 7, func(c *Context) {
		if c.Target != targets[i] || c.Serial != 7+uint64(i) {
			t.Fatalf("position %d: got target %d serial %d, want %d/%d",
				i, c.Target, c.Serial, targets[i], 7+uint64(i))
		}
		i++
	})
	if err != nil {
		t.Fatalf("Each: %v", err)
	}
	if i != len(targets) {
		t.Fatalf("delivered %d samples, want %d", i, len(targets))
	}
}

// TestPipelineShardBackingBitwise: sampling over a sharded view with a tight
// cache budget produces bitwise the same ego-contexts as the in-memory
// source — the whole point of the out-of-core path.
func TestPipelineShardBackingBitwise(t *testing.T) {
	ds, src := testSource(t)
	dir := filepath.Join(t.TempDir(), "shards")
	if _, err := shard.Write(dir, ds, 3); err != nil {
		t.Fatalf("shard.Write: %v", err)
	}
	v, err := shard.Open(dir, shard.Options{CacheBytes: 32 << 10, BlockBytes: 1 << 10})
	if err != nil {
		t.Fatalf("shard.Open: %v", err)
	}
	defer v.Close()

	targets := make([]int32, 150)
	for i := range targets {
		targets[i] = int32((i * 11) % ds.G.N)
	}
	ref := runPipeline(t, src, 0, targets)
	got := runPipeline(t, v, 4, targets)
	for i := range ref {
		if !equalSnap(ref[i], got[i]) {
			t.Fatalf("context %d: shard-backed sample differs from in-memory", i)
		}
	}
	st := v.IOStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("expected cache traffic on the shard backing, got %+v", st)
	}
}

// TestSampleBounds: MaxSize caps the ego size, the target always leads, and
// nodes are unique.
func TestSampleBounds(t *testing.T) {
	ds, src := testSource(t)
	s := New(src, Config{Hops: 3, MaxSize: 16, Seed: 1})
	c := s.NewContext()
	for target := int32(0); target < int32(ds.G.N); target += 23 {
		s.Sample(c, target, uint64(target))
		if len(c.Nodes) == 0 || len(c.Nodes) > 16 {
			t.Fatalf("target %d: ego size %d outside (0, 16]", target, len(c.Nodes))
		}
		if c.Nodes[0] != target {
			t.Fatalf("target %d not at position 0", target)
		}
		seen := map[int32]bool{}
		for _, n := range c.Nodes {
			if seen[n] {
				t.Fatalf("target %d: duplicate node %d", target, n)
			}
			seen[n] = true
		}
		if c.Sub.N != len(c.Nodes) || c.X.Rows != len(c.Nodes) {
			t.Fatalf("target %d: subgraph %d / features %d rows vs %d nodes",
				target, c.Sub.N, c.X.Rows, len(c.Nodes))
		}
		if c.Label != ds.Y[target] {
			t.Fatalf("target %d: label %d, want %d", target, c.Label, ds.Y[target])
		}
	}
}

// BenchmarkSampleSteady is the CI-gated allocation ceiling for the sampling
// hot path: one reused context, repeated samples over a shard-backed view.
func BenchmarkSampleSteady(b *testing.B) {
	ds, err := graph.LoadNodeScaled("arxiv-sim", 600, 13)
	if err != nil {
		b.Fatalf("LoadNodeScaled: %v", err)
	}
	dir := filepath.Join(b.TempDir(), "shards")
	if _, err := shard.Write(dir, ds, 3); err != nil {
		b.Fatalf("shard.Write: %v", err)
	}
	v, err := shard.Open(dir, shard.Options{CacheBytes: 1 << 20, BlockBytes: 8 << 10})
	if err != nil {
		b.Fatalf("shard.Open: %v", err)
	}
	defer v.Close()
	s := New(v, Config{Hops: 2, MaxSize: 32, Seed: 7})
	c := s.NewContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(c, int32(i%ds.G.N), uint64(i))
	}
}
