package sample

import (
	"sync"
	"sync/atomic"
)

// Pipeline drives the sampler over ordered target lists with a bounded
// worker pool, prefetching ahead of the consumer while delivering contexts
// strictly in submission order — the consumer (an optimiser step, a batch
// builder) sees exactly the sequence a synchronous loop would produce, while
// the disk reads of upcoming samples overlap its compute.
//
// Ordering scheme: with W workers the pipeline owns L = 2W pooled contexts
// and L slot channels of capacity 1; sample i is delivered through slot
// i mod L. Workers claim indices from an atomic counter and block sending
// into their slot until the consumer has drained the slot's previous
// occupant (sample i−L). Because a worker must first take a context from the
// free pool — refilled only as the consumer finishes samples — at most L
// samples are ever in flight, so the slot a worker sends to is always
// already drained: no reordering, no deadlock, lookahead capped at L.
type Pipeline struct {
	s *Sampler
}

// NewPipeline builds a pipeline over s.
func NewPipeline(s *Sampler) *Pipeline { return &Pipeline{s: s} }

// Each samples every target in order, invoking fn with the filled context of
// target i (serial startSerial+i) in exactly the order given. fn must not
// retain the context. Returns the source's sticky I/O error, if any, after
// the last sample — disk-resident sources degrade to zero-filled samples on
// I/O failure rather than panicking, and the error surfaces here.
func (p *Pipeline) Each(targets []int32, startSerial uint64, fn func(*Context)) error {
	w := p.s.cfg.Workers
	if w <= 1 || len(targets) < 2 {
		c := p.s.NewContext()
		for i, t := range targets {
			p.s.Sample(c, t, startSerial+uint64(i))
			fn(c)
		}
		return p.s.src.SourceErr()
	}
	if w > len(targets) {
		w = len(targets)
	}
	lookahead := 2 * w
	free := make(chan *Context, lookahead)
	slots := make([]chan *Context, lookahead)
	for i := 0; i < lookahead; i++ {
		free <- p.s.NewContext()
		slots[i] = make(chan *Context, 1)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// The context MUST be acquired before the index is claimed:
				// each claimed-but-unsent sample then holds one of the L
				// pooled contexts, and a context only returns to the pool
				// after the consumer drains a slot, so sample i+L cannot be
				// claimed until sample i has been consumed and slot i mod L
				// is empty. Claiming first would let a descheduled worker be
				// overtaken by a full lap and deliver out of order.
				c := <-free
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					free <- c
					return
				}
				p.s.Sample(c, targets[i], startSerial+uint64(i))
				slots[i%lookahead] <- c
			}
		}()
	}
	for i := range targets {
		c := <-slots[i%lookahead]
		fn(c)
		free <- c
	}
	wg.Wait()
	return p.s.src.SourceErr()
}
