// Package partition implements a METIS-style multilevel k-way graph
// partitioner: heavy-edge-matching coarsening, greedy region-growing
// recursive bisection on the coarsest graph, and FM-style boundary
// refinement during uncoarsening. TorchGT uses it (a) to reorder node IDs so
// that clusters are contiguous — improving attention locality — and (b) to
// define the k×k clustered attention layout consumed by the Elastic
// Computation Reformation.
package partition

import (
	"math/rand"
	"sort"

	"torchgt/internal/graph"
)

// wedge is a weighted edge of a coarsened graph.
type wedge struct {
	to int32
	w  int32
}

// wgraph is the internal weighted multilevel representation.
type wgraph struct {
	n     int
	adj   [][]wedge
	nodeW []int32
	// fineMap[i] = coarse node that fine node i collapsed into (for the
	// level below this one); nil at the finest level.
	fineMap []int32
}

func fromGraph(g *graph.Graph) *wgraph {
	wg := &wgraph{n: g.N, adj: make([][]wedge, g.N), nodeW: make([]int32, g.N)}
	for i := 0; i < g.N; i++ {
		wg.nodeW[i] = 1
		adj := g.Neighbors(i)
		out := make([]wedge, 0, len(adj))
		for _, v := range adj {
			if int(v) == i {
				continue // ignore self loops for partitioning
			}
			out = append(out, wedge{to: v, w: 1})
		}
		wg.adj[i] = out
	}
	return wg
}

// coarsen performs one level of heavy-edge matching and returns the coarser
// graph, or nil if coarsening made no progress.
func (wg *wgraph) coarsen(rng *rand.Rand) *wgraph {
	match := make([]int32, wg.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(wg.n)
	coarseN := 0
	coarseID := make([]int32, wg.n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		// heaviest unmatched neighbour
		best := int32(-1)
		var bestW int32
		for _, e := range wg.adj[u] {
			if match[e.to] < 0 && int(e.to) != u && e.w > bestW {
				best = e.to
				bestW = e.w
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
			coarseID[u] = int32(coarseN)
			coarseID[best] = int32(coarseN)
		} else {
			match[u] = int32(u)
			coarseID[u] = int32(coarseN)
		}
		coarseN++
	}
	if coarseN >= wg.n { // no progress
		return nil
	}
	out := &wgraph{
		n:       coarseN,
		adj:     make([][]wedge, coarseN),
		nodeW:   make([]int32, coarseN),
		fineMap: coarseID,
	}
	// accumulate node weights and edges
	edgeAcc := make([]map[int32]int32, coarseN)
	for u := 0; u < wg.n; u++ {
		cu := coarseID[u]
		out.nodeW[cu] += wg.nodeW[u]
		if edgeAcc[cu] == nil {
			edgeAcc[cu] = make(map[int32]int32)
		}
		for _, e := range wg.adj[u] {
			cv := coarseID[e.to]
			if cv == cu {
				continue
			}
			edgeAcc[cu][cv] += e.w
		}
	}
	for c := 0; c < coarseN; c++ {
		for v, w := range edgeAcc[c] {
			out.adj[c] = append(out.adj[c], wedge{to: v, w: w})
		}
		// deterministic adjacency order regardless of map iteration
		sort.Slice(out.adj[c], func(i, j int) bool { return out.adj[c][i].to < out.adj[c][j].to })
	}
	return out
}

// bisect splits nodes (a subset of wg) into two sides with target weight
// ratio leftFrac using greedy BFS region growth from a random seed.
func (wg *wgraph) bisect(nodes []int32, leftFrac float64, rng *rand.Rand) (left, right []int32) {
	if len(nodes) == 0 {
		return nil, nil
	}
	inSet := make(map[int32]bool, len(nodes))
	var totalW int64
	for _, u := range nodes {
		inSet[u] = true
		totalW += int64(wg.nodeW[u])
	}
	targetW := int64(float64(totalW) * leftFrac)
	picked := make(map[int32]bool)
	var pickedW int64
	seed := nodes[rng.Intn(len(nodes))]
	queue := []int32{seed}
	picked[seed] = true
	pickedW += int64(wg.nodeW[seed])
	for qi := 0; qi < len(queue) && pickedW < targetW; qi++ {
		u := queue[qi]
		for _, e := range wg.adj[u] {
			if pickedW >= targetW {
				break
			}
			if inSet[e.to] && !picked[e.to] {
				picked[e.to] = true
				pickedW += int64(wg.nodeW[e.to])
				queue = append(queue, e.to)
			}
		}
	}
	// BFS may exhaust a component before reaching target: top up arbitrarily.
	for _, u := range nodes {
		if pickedW >= targetW {
			break
		}
		if !picked[u] {
			picked[u] = true
			pickedW += int64(wg.nodeW[u])
		}
	}
	for _, u := range nodes {
		if picked[u] {
			left = append(left, u)
		} else {
			right = append(right, u)
		}
	}
	return left, right
}

// initialPartition recursively bisects the coarsest graph into k parts.
func (wg *wgraph) initialPartition(k int, rng *rand.Rand) []int32 {
	part := make([]int32, wg.n)
	all := make([]int32, wg.n)
	for i := range all {
		all[i] = int32(i)
	}
	var rec func(nodes []int32, lo, hi int)
	rec = func(nodes []int32, lo, hi int) {
		if hi-lo <= 1 {
			for _, u := range nodes {
				part[u] = int32(lo)
			}
			return
		}
		mid := (lo + hi) / 2
		frac := float64(mid-lo) / float64(hi-lo)
		left, right := wg.bisect(nodes, frac, rng)
		rec(left, lo, mid)
		rec(right, mid, hi)
	}
	rec(all, 0, k)
	return part
}

// refine runs FM-style boundary passes: move a node to the neighbouring part
// with the best positive gain, subject to a balance constraint.
func (wg *wgraph) refine(part []int32, k int, passes int) {
	partW := make([]int64, k)
	var totalW int64
	for u := 0; u < wg.n; u++ {
		partW[part[u]] += int64(wg.nodeW[u])
		totalW += int64(wg.nodeW[u])
	}
	maxW := int64(float64(totalW)/float64(k)*1.1) + 1
	conn := make([]int32, k)
	touched := make([]int32, 0, 16)
	for p := 0; p < passes; p++ {
		moved := 0
		for u := 0; u < wg.n; u++ {
			pu := part[u]
			// connection weight to each adjacent part (deterministic:
			// candidate parts examined in adjacency order)
			touched = touched[:0]
			for _, e := range wg.adj[u] {
				pv := part[e.to]
				if conn[pv] == 0 {
					touched = append(touched, pv)
				}
				conn[pv] += e.w
			}
			bestPart := pu
			bestGain := int32(0)
			for _, pv := range touched {
				if pv == pu {
					continue
				}
				gain := conn[pv] - conn[pu]
				if (gain > bestGain || (gain == bestGain && bestPart != pu && pv < bestPart)) &&
					partW[pv]+int64(wg.nodeW[u]) <= maxW {
					bestGain = gain
					bestPart = pv
				}
			}
			for _, pv := range touched {
				conn[pv] = 0
			}
			if bestPart != pu {
				partW[pu] -= int64(wg.nodeW[u])
				partW[bestPart] += int64(wg.nodeW[u])
				part[u] = bestPart
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// cutWeight sums the weight of edges crossing parts (each direction counted).
func (wg *wgraph) cutWeight(part []int32) int64 {
	var cut int64
	for u := 0; u < wg.n; u++ {
		for _, e := range wg.adj[u] {
			if part[u] != part[e.to] {
				cut += int64(e.w)
			}
		}
	}
	return cut
}

// Partition splits g into k parts using the multilevel scheme and returns a
// part label per node. Deterministic for a given seed.
func Partition(g *graph.Graph, k int, seed int64) []int32 {
	if k <= 1 || g.N == 0 {
		return make([]int32, g.N)
	}
	if k >= g.N {
		part := make([]int32, g.N)
		for i := range part {
			part[i] = int32(i % k)
		}
		return part
	}
	rng := rand.New(rand.NewSource(seed))
	levels := []*wgraph{fromGraph(g)}
	coarsestTarget := 8 * k
	if coarsestTarget < 64 {
		coarsestTarget = 64
	}
	for levels[len(levels)-1].n > coarsestTarget {
		next := levels[len(levels)-1].coarsen(rng)
		if next == nil {
			break
		}
		levels = append(levels, next)
	}
	// several randomised initial partitions on the coarsest graph; keep the
	// best cut (cheap: the coarsest graph is tiny).
	coarsest := levels[len(levels)-1]
	var part []int32
	bestCut := int64(-1)
	for try := 0; try < 4; try++ {
		cand := coarsest.initialPartition(k, rng)
		coarsest.refine(cand, k, 8)
		cut := coarsest.cutWeight(cand)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			part = cand
		}
	}
	// project back up through the levels
	for li := len(levels) - 1; li >= 1; li-- {
		coarse := levels[li]
		fine := levels[li-1]
		finePart := make([]int32, fine.n)
		for u := 0; u < fine.n; u++ {
			finePart[u] = part[coarse.fineMap[u]]
		}
		part = finePart
		fine.refine(part, k, 4)
	}
	return part
}

// ClusterOrder returns a permutation (old ID → new ID) that lays parts out
// contiguously in ascending part order, plus the row boundaries of each part
// in the new ordering (len k+1). Within a part the original relative order is
// preserved.
func ClusterOrder(part []int32, k int) (perm []int32, bounds []int32) {
	counts := make([]int32, k+1)
	for _, p := range part {
		counts[p+1]++
	}
	for i := 0; i < k; i++ {
		counts[i+1] += counts[i]
	}
	bounds = append([]int32(nil), counts...)
	next := append([]int32(nil), counts[:k]...)
	perm = make([]int32, len(part))
	for old, p := range part {
		perm[old] = next[p]
		next[p]++
	}
	return perm, bounds
}

// EdgeCut counts edges whose endpoints lie in different parts (each directed
// stored edge counted once).
func EdgeCut(g *graph.Graph, part []int32) int {
	cut := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if part[u] != part[v] {
				cut++
			}
		}
	}
	return cut
}

// Balance returns maxPartSize / idealPartSize (1.0 = perfectly balanced).
func Balance(part []int32, k int) float64 {
	if len(part) == 0 || k == 0 {
		return 1
	}
	counts := make([]int, k)
	for _, p := range part {
		counts[p]++
	}
	mx := 0
	for _, c := range counts {
		if c > mx {
			mx = c
		}
	}
	return float64(mx) * float64(k) / float64(len(part))
}

// DiagonalDensity returns the fraction of edges that fall inside a part
// (the "dense diagonal clusters" of the paper's Fig. 5b).
func DiagonalDensity(g *graph.Graph, part []int32) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return 1 - float64(EdgeCut(g, part))/float64(g.NumEdges())
}
