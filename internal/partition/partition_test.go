package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"torchgt/internal/graph"
)

func sbmGraph(t *testing.T, blocks, per int, seed int64) (*graph.Graph, []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, blocks)
	for i := range sizes {
		sizes[i] = per
	}
	g, b := graph.SBM(graph.SBMConfig{BlockSizes: sizes, AvgDegIn: 10, AvgDegOut: 0.5}, rng)
	return g, b
}

func TestPartitionLabelsValid(t *testing.T) {
	g, _ := sbmGraph(t, 4, 64, 1)
	part := Partition(g, 4, 7)
	if len(part) != g.N {
		t.Fatal("length wrong")
	}
	for _, p := range part {
		if p < 0 || p >= 4 {
			t.Fatalf("part label out of range: %d", p)
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	g, _ := sbmGraph(t, 8, 64, 2)
	part := Partition(g, 8, 3)
	if b := Balance(part, 8); b > 1.3 {
		t.Fatalf("imbalance too high: %v", b)
	}
}

func TestPartitionRecoversPlantedClusters(t *testing.T) {
	// strong planted structure: partitioner should cut far fewer edges than a
	// random assignment.
	g, _ := sbmGraph(t, 4, 128, 3)
	part := Partition(g, 4, 11)
	cut := EdgeCut(g, part)

	rng := rand.New(rand.NewSource(5))
	randPart := make([]int32, g.N)
	for i := range randPart {
		randPart[i] = int32(rng.Intn(4))
	}
	randCut := EdgeCut(g, randPart)
	if cut*3 > randCut {
		t.Fatalf("multilevel cut %d not much better than random cut %d", cut, randCut)
	}
	if DiagonalDensity(g, part) < 0.8 {
		t.Fatalf("diagonal density %v too low for planted clusters", DiagonalDensity(g, part))
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g, _ := sbmGraph(t, 4, 64, 4)
	a := Partition(g, 4, 9)
	b := Partition(g, 4, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same partition")
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	g, _ := sbmGraph(t, 2, 16, 5)
	// k=1: all zeros
	for _, p := range Partition(g, 1, 1) {
		if p != 0 {
			t.Fatal("k=1 must map all to part 0")
		}
	}
	// k >= N: round-robin labels in range
	small := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, true)
	part := Partition(small, 5, 1)
	for _, p := range part {
		if p < 0 || p >= 5 {
			t.Fatal("label out of range for k>=N")
		}
	}
	// empty graph
	empty := graph.FromEdges(0, nil, false)
	if len(Partition(empty, 4, 1)) != 0 {
		t.Fatal("empty graph must give empty partition")
	}
}

func TestClusterOrderContiguous(t *testing.T) {
	part := []int32{2, 0, 1, 0, 2, 1}
	perm, bounds := ClusterOrder(part, 3)
	if len(bounds) != 4 || bounds[0] != 0 || bounds[3] != 6 {
		t.Fatalf("bounds wrong: %v", bounds)
	}
	// every old node's new position must land inside its part's range
	for old, p := range part {
		np := perm[old]
		if np < bounds[p] || np >= bounds[p+1] {
			t.Fatalf("node %d (part %d) mapped to %d outside [%d,%d)", old, p, np, bounds[p], bounds[p+1])
		}
	}
	// perm must be a permutation
	seen := make([]bool, 6)
	for _, v := range perm {
		if seen[v] {
			t.Fatal("duplicate in perm")
		}
		seen[v] = true
	}
}

// Property: ClusterOrder output is always a valid permutation with
// monotone bounds for random partitions.
func TestClusterOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(8)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(k))
		}
		perm, bounds := ClusterOrder(part, k)
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		for i := 0; i < k; i++ {
			if bounds[i] > bounds[i+1] {
				return false
			}
		}
		return int(bounds[k]) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderImprovesDiagonalDensity(t *testing.T) {
	// After partition + reorder, edges should concentrate near the diagonal
	// blocks of the reordered adjacency (the paper's Fig. 5(b) effect).
	g, _ := sbmGraph(t, 8, 64, 6)
	rng := rand.New(rand.NewSource(7))
	shuffled := g.Permute(graph.ShuffledIDs(g.N, rng))

	k := 8
	part := Partition(shuffled, k, 13)
	perm, bounds := ClusterOrder(part, k)
	re := shuffled.Permute(perm)

	// in the reordered graph, part of node i is its bucket by bounds
	partOf := func(i int32) int32 {
		for b := 0; b < k; b++ {
			if i >= bounds[b] && i < bounds[b+1] {
				return int32(b)
			}
		}
		return -1
	}
	inside := 0
	for u := 0; u < re.N; u++ {
		for _, v := range re.Neighbors(u) {
			if partOf(int32(u)) == partOf(v) {
				inside++
			}
		}
	}
	frac := float64(inside) / float64(re.NumEdges())
	if frac < 0.75 {
		t.Fatalf("diagonal fraction %v too low after reorder", frac)
	}
}

func TestEdgeCutAndBalanceBasics(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}}, true)
	part := []int32{0, 0, 1, 1}
	if EdgeCut(g, part) != 2 { // edge 1-2 in both directions
		t.Fatalf("cut=%d", EdgeCut(g, part))
	}
	if Balance(part, 2) != 1.0 {
		t.Fatalf("balance=%v", Balance(part, 2))
	}
	if Balance([]int32{0, 0, 0, 1}, 2) != 1.5 {
		t.Fatal("unbalanced case wrong")
	}
	if d := DiagonalDensity(g, part); d < 0.666 || d > 0.667 {
		t.Fatalf("diag density=%v", d)
	}
}
