package partition

import (
	"math/rand"
	"testing"

	"torchgt/internal/graph"
)

// checkBijection fails unless perm is a bijection on [0, n).
func checkBijection(t *testing.T, perm []int32, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for old, nw := range perm {
		if nw < 0 || int(nw) >= n {
			t.Fatalf("perm[%d] = %d outside [0, %d)", old, nw, n)
		}
		if seen[nw] {
			t.Fatalf("perm maps two nodes to %d", nw)
		}
		seen[nw] = true
	}
}

// TestClusterOrderBijection pins the core contract the reorder transform and
// the cluster layout both lean on: ClusterOrder yields a bijection on [0, n)
// with monotone bounds that tile [0, n] exactly, and nodes of cluster c land
// precisely in [bounds[c], bounds[c+1]) in ascending old-ID order.
func TestClusterOrderBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 100, 513} {
		for _, k := range []int{1, 2, 8, 16} {
			g := graph.BarabasiAlbert(n, 3, rng)
			part := Partition(g, k, 42)
			perm, bounds := ClusterOrder(part, k)
			checkBijection(t, perm, n)
			if len(bounds) != k+1 || bounds[0] != 0 || int(bounds[k]) != n {
				t.Fatalf("n=%d k=%d: bounds %v do not tile [0, %d]", n, k, bounds, n)
			}
			prev := int32(-1)
			for c := 0; c < k; c++ {
				if bounds[c+1] < bounds[c] {
					t.Fatalf("bounds not monotone: %v", bounds)
				}
				prev = -1
				for old := 0; old < n; old++ {
					if part[old] != int32(c) {
						continue
					}
					nw := perm[old]
					if nw < bounds[c] || nw >= bounds[c+1] {
						t.Fatalf("node %d (cluster %d) placed at %d outside [%d, %d)",
							old, c, nw, bounds[c], bounds[c+1])
					}
					if nw <= prev {
						t.Fatalf("cluster %d not in ascending old-ID order", c)
					}
					prev = nw
				}
			}
		}
	}
}

// TestClusterOrderEmptyAndSingletonClusters pins the degenerate shapes: a
// hand-built assignment with empty clusters and a singleton cluster must
// still produce a bijection, with zero-width bounds for the empty ones.
func TestClusterOrderEmptyAndSingletonClusters(t *testing.T) {
	// k=5: cluster 0 empty, cluster 2 singleton, cluster 4 empty.
	part := []int32{1, 3, 1, 2, 3, 1}
	perm, bounds := ClusterOrder(part, 5)
	checkBijection(t, perm, len(part))
	want := []int32{0, 0, 3, 4, 6, 6}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
	if bounds[1]-bounds[0] != 0 || bounds[5]-bounds[4] != 0 {
		t.Fatalf("empty clusters must have zero width: %v", bounds)
	}
	if bounds[3]-bounds[2] != 1 {
		t.Fatalf("singleton cluster width %d, want 1", bounds[3]-bounds[2])
	}
}

// TestPartitionKExceedsN pins the k > n fallback (round-robin parts) and
// that ClusterOrder still yields a valid permutation over the many-empty
// bounds it produces.
func TestPartitionKExceedsN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.BarabasiAlbert(6, 2, rng)
	k := 11
	part := Partition(g, k, 1)
	for i, p := range part {
		if int(p) != i%k {
			t.Fatalf("k>n: part[%d] = %d, want %d", i, p, i%k)
		}
	}
	perm, bounds := ClusterOrder(part, k)
	checkBijection(t, perm, g.N)
	if len(bounds) != k+1 || int(bounds[k]) != g.N {
		t.Fatalf("bounds %v, want k+1 entries ending at %d", bounds, g.N)
	}
}

// TestClusterOrderPermuteRoundTrip pins what the data-layer reorder relies
// on: permuting a graph (with self-loops) by a cluster order preserves the
// edge set under relabeling — in particular every self-loop survives — and
// permuting back by the inverse recovers the original adjacency exactly.
func TestClusterOrderPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.BarabasiAlbert(64, 3, rng).WithSelfLoops()
	part := Partition(g, 4, 7)
	perm, _ := ClusterOrder(part, 4)
	pg := g.Permute(perm)

	for u := int32(0); int(u) < g.N; u++ {
		if !pg.HasEdge(perm[u], perm[u]) {
			t.Fatalf("self-loop on %d lost by permutation", u)
		}
		for _, v := range g.Neighbors(int(u)) {
			if !pg.HasEdge(perm[u], perm[v]) {
				t.Fatalf("edge (%d,%d) lost by permutation", u, v)
			}
		}
	}
	if pg.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), pg.NumEdges())
	}

	inv := make([]int32, len(perm))
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	back := pg.Permute(inv)
	for u := 0; u < g.N; u++ {
		a, b := g.Neighbors(u), back.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("node %d: degree %d -> %d after round trip", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: adjacency differs after round trip", u)
			}
		}
	}
}
