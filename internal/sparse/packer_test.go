package sparse

import (
	"math/rand"
	"testing"

	"torchgt/internal/graph"
)

// randPatterns builds a set of small per-graph patterns (self-loops added by
// FromGraph, a global token on request) of varied sizes.
func randPatterns(n int, global bool, seed int64) []*Pattern {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Pattern, n)
	for i := range out {
		s := 3 + rng.Intn(12)
		p := FromGraph(graph.BarabasiAlbert(s, 2, rng))
		if global {
			p = p.WithGlobalToken()
		}
		out[i] = p
	}
	return out
}

// TestPackerBlockDiagonal pins the packing contract: the packed pattern
// contains pair (i, j) exactly when i and j fall in the same segment and
// that segment's own pattern contains the local pair — no cross-segment
// leakage in either direction.
func TestPackerBlockDiagonal(t *testing.T) {
	pats := randPatterns(5, true, 11)
	p := NewPacker()
	for _, sp := range pats {
		p.Append(sp, nil)
	}
	packed := p.Pattern()
	if err := packed.Validate(); err != nil {
		t.Fatal(err)
	}
	bounds := p.Bounds()
	if p.Segments() != len(pats) || len(bounds) != len(pats)+1 {
		t.Fatalf("segments=%d bounds=%d", p.Segments(), len(bounds))
	}
	total := 0
	for _, sp := range pats {
		total += sp.S
	}
	if packed.S != total || int(bounds[len(bounds)-1]) != total {
		t.Fatalf("packed S=%d, want %d", packed.S, total)
	}
	segOf := func(x int32) int {
		for s := 0; s+1 < len(bounds); s++ {
			if x >= bounds[s] && x < bounds[s+1] {
				return s
			}
		}
		t.Fatalf("position %d outside bounds", x)
		return -1
	}
	for i := 0; i < packed.S; i++ {
		si := segOf(int32(i))
		for j := 0; j < packed.S; j++ {
			sj := segOf(int32(j))
			want := si == sj && pats[si].Has(int32(i)-bounds[si], int32(j)-bounds[si])
			if got := packed.Has(int32(i), int32(j)); got != want {
				t.Fatalf("packed.Has(%d,%d)=%v, want %v (segments %d/%d)", i, j, got, want, si, sj)
			}
		}
	}
}

// TestPackerBuckets pins verbatim bucket concatenation: the packed bucket of
// every entry equals the owning segment's own bucket for the local entry —
// including the per-graph global-token buckets, which a recomputation over
// the packed pattern would misclassify for every block but the first.
func TestPackerBuckets(t *testing.T) {
	pats := randPatterns(4, true, 13)
	p := NewPacker()
	var want []int32
	for _, sp := range pats {
		bk := sp.LocalEdgeBuckets(true, 7)
		want = append(want, bk...)
		p.Append(sp, bk)
	}
	got := p.Buckets()
	if len(got) != len(want) {
		t.Fatalf("%d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if int(p.Pattern().NNZ()) != len(want) {
		t.Fatalf("nnz %d != %d buckets", p.Pattern().NNZ(), len(want))
	}
	// Nil buckets throughout → nil result.
	p.Reset()
	for _, sp := range pats {
		p.Append(sp, nil)
	}
	if p.Buckets() != nil {
		t.Fatal("expected nil buckets when no segment supplied any")
	}
}

// TestPackerReuse pins that Reset recycles buffers without leaking previous
// batches: packing A, then packing B, yields exactly B's pattern.
func TestPackerReuse(t *testing.T) {
	a := randPatterns(6, false, 17)
	bb := randPatterns(3, false, 19)
	p := NewPacker()
	for _, sp := range a {
		p.Append(sp, nil)
	}
	_ = p.Pattern()
	p.Reset()
	for _, sp := range bb {
		p.Append(sp, nil)
	}
	packed := p.Pattern()
	ref := NewPacker()
	for _, sp := range bb {
		ref.Append(sp, nil)
	}
	refPacked := ref.Pattern()
	if packed.S != refPacked.S || packed.NNZ() != refPacked.NNZ() {
		t.Fatalf("reused packer: S=%d nnz=%d, want S=%d nnz=%d",
			packed.S, packed.NNZ(), refPacked.S, refPacked.NNZ())
	}
	for i := range refPacked.RowPtr {
		if packed.RowPtr[i] != refPacked.RowPtr[i] {
			t.Fatalf("rowptr[%d] differs after reuse", i)
		}
	}
	for i := range refPacked.ColIdx {
		if packed.ColIdx[i] != refPacked.ColIdx[i] {
			t.Fatalf("colidx[%d] differs after reuse", i)
		}
	}
}

// TestPackerSteadyStateAllocFree pins the serve hit-path contract: once the
// buffers have grown to batch size, Reset+Append+Pattern allocates nothing
// (the sync.Pool in the serving engine relies on this, like EgoCache).
func TestPackerSteadyStateAllocFree(t *testing.T) {
	pats := randPatterns(8, false, 23)
	p := NewPacker()
	pack := func() {
		p.Reset()
		for _, sp := range pats {
			p.Append(sp, sp.ColIdx) // any []int32 of nnz length works as buckets
		}
		_ = p.Pattern()
		_ = p.Buckets()
		_ = p.Bounds()
	}
	pack() // grow once
	if allocs := testing.AllocsPerRun(20, pack); allocs != 0 {
		t.Fatalf("steady-state packing allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkPackerAppend is the CI allocs/op gate for the packer (ceiling 0
// in ci/bench-baseline.json): one serve-sized flush of segment appends plus
// the pattern/bucket/bounds reads, on warm buffers.
func BenchmarkPackerAppend(b *testing.B) {
	pats := randPatterns(16, false, 29)
	buckets := make([][]int32, len(pats))
	for i, sp := range pats {
		buckets[i] = sp.LocalEdgeBuckets(false, 0)
	}
	p := NewPacker()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		for k, sp := range pats {
			p.Append(sp, buckets[k])
		}
		_ = p.Pattern()
		_ = p.Buckets()
		_ = p.Bounds()
	}
}
