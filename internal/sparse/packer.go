package sparse

// Packer assembles a block-diagonal packed Pattern from per-segment
// patterns: segment s occupies the contiguous token range
// [Bounds()[s], Bounds()[s+1]) and its pattern entries are shifted there
// verbatim, so token i of the packed sequence attends token j iff both lie
// in the same segment and that segment's own pattern contains the local
// pair. This is the sequence-packing primitive shared by graph-level
// training (many short graphs coalesced into one attention call) and the
// serving scheduler (one flush of ego-context segments becomes one
// forward); both rely on the block-diagonal mask for their bitwise
// per-segment independence guarantees.
//
// Because every per-segment pattern is already valid CSR (rows sorted
// ascending) and segments occupy disjoint ascending column ranges, packing
// is a pure concatenation — no re-sort, no dedup. All buffers grow once
// and are reused across Reset cycles, so the steady-state Append/Pattern
// path allocates nothing (pinned by BenchmarkPackerAppend, like the
// EgoCache hit path).
//
// A Packer is not safe for concurrent use; the serving engine draws one
// per in-flight batch from a sync.Pool.
type Packer struct {
	rowPtr  []int32
	colIdx  []int32
	buckets []int32
	bounds  []int32
	pat     Pattern // reused header returned by Pattern()
}

// NewPacker returns an empty packer.
func NewPacker() *Packer {
	p := &Packer{}
	p.Reset()
	return p
}

// Reset clears the packer for a new batch, keeping capacity.
func (p *Packer) Reset() {
	p.rowPtr = append(p.rowPtr[:0], 0)
	p.colIdx = p.colIdx[:0]
	p.buckets = p.buckets[:0]
	p.bounds = append(p.bounds[:0], 0)
}

// Append adds one segment. buckets, when non-nil, are the segment's
// per-entry bias buckets (len sp.NNZ()); they are concatenated verbatim —
// NOT recomputed over the packed pattern, which matters for segments whose
// token 0 is a per-graph global token: recomputing on the packed sequence
// would misclassify every block start except the first.
func (p *Packer) Append(sp *Pattern, buckets []int32) {
	base := p.bounds[len(p.bounds)-1]
	nnz := int32(len(p.colIdx))
	for i := 0; i < sp.S; i++ {
		for _, j := range sp.Row(i) {
			p.colIdx = append(p.colIdx, j+base)
		}
		p.rowPtr = append(p.rowPtr, nnz+sp.RowPtr[i+1])
	}
	if buckets != nil {
		p.buckets = append(p.buckets, buckets...)
	}
	p.bounds = append(p.bounds, base+int32(sp.S))
}

// Segments reports how many segments have been appended since Reset.
func (p *Packer) Segments() int { return len(p.bounds) - 1 }

// Bounds returns the segment boundaries over packed token positions
// (len Segments()+1, starting at 0). The slice aliases packer storage and
// is valid until the next Reset.
func (p *Packer) Bounds() []int32 { return p.bounds }

// Pattern returns the packed block-diagonal pattern. The returned value
// aliases packer storage: it is valid until the next Reset and must not be
// retained past the forward pass it was built for.
func (p *Packer) Pattern() *Pattern {
	p.pat = Pattern{S: int(p.bounds[len(p.bounds)-1]), RowPtr: p.rowPtr, ColIdx: p.colIdx}
	return &p.pat
}

// Buckets returns the concatenated per-entry bias buckets (nil when no
// segment supplied any). Aliases packer storage, valid until Reset.
func (p *Packer) Buckets() []int32 {
	if len(p.buckets) == 0 {
		return nil
	}
	return p.buckets
}
