package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"torchgt/internal/graph"
)

func ringPattern(s int) *Pattern {
	var pairs []graph.Edge
	for i := 0; i < s; i++ {
		pairs = append(pairs, graph.Edge{U: int32(i), V: int32((i + 1) % s)})
		pairs = append(pairs, graph.Edge{U: int32((i + 1) % s), V: int32(i)})
		pairs = append(pairs, graph.Edge{U: int32(i), V: int32(i)})
	}
	return FromPairs(s, pairs)
}

func TestFromGraphAddsSelfLoops(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, true)
	p := FromGraph(g)
	for i := int32(0); i < 3; i++ {
		if !p.Has(i, i) {
			t.Fatalf("missing self loop %d (C1 violated)", i)
		}
	}
	if !p.Has(0, 1) || !p.Has(1, 0) {
		t.Fatal("graph edges must be attended")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDensePattern(t *testing.T) {
	p := Dense(4)
	if p.NNZ() != 16 || p.Sparsity() != 1.0 {
		t.Fatalf("NNZ=%d sparsity=%v", p.NNZ(), p.Sparsity())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithGlobalToken(t *testing.T) {
	p := ringPattern(5)
	pg := p.WithGlobalToken()
	if pg.S != 6 {
		t.Fatal("S must grow by 1")
	}
	for i := int32(0); i < 6; i++ {
		if !pg.Has(0, i) || !pg.Has(i, 0) {
			t.Fatalf("global token must attend/be attended by %d", i)
		}
	}
	// original pairs shifted by 1
	if !pg.Has(1, 2) || !pg.Has(2, 1) {
		t.Fatal("shifted pairs missing")
	}
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubPattern(t *testing.T) {
	p := ringPattern(8)
	sub := p.SubPattern(2, 6)
	if sub.S != 4 {
		t.Fatal("size wrong")
	}
	if !sub.Has(0, 1) { // old (2,3)
		t.Fatal("internal pair missing")
	}
	if !sub.Has(0, 0) {
		t.Fatal("self loop must survive")
	}
	// pair (1,2)->(... ,0) old edge (1,2): 1 outside → dropped
	for i := 0; i < sub.S; i++ {
		for _, j := range sub.Row(i) {
			if j < 0 || int(j) >= 4 {
				t.Fatal("out of range")
			}
		}
	}
}

func TestPatternPermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := FromGraph(graph.ErdosRenyi(20, 0.2, rng))
		perm := graph.ShuffledIDs(20, rng)
		inv := make([]int32, 20)
		for o, n := range perm {
			inv[n] = int32(o)
		}
		q := p.Permute(perm).Permute(inv)
		if q.NNZ() != p.NNZ() {
			return false
		}
		for i := 0; i < p.S; i++ {
			for _, j := range p.Row(i) {
				if !q.Has(int32(i), j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterLayoutCounts(t *testing.T) {
	p := ringPattern(8)
	bounds := []int32{0, 4, 8}
	cl, err := NewClusterLayout(p, bounds)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range cl.NNZ {
		total += n
	}
	if int(total) != p.NNZ() {
		t.Fatalf("cluster NNZ %d != pattern NNZ %d", total, p.NNZ())
	}
	// ring 0..7 with halves: cross-cluster pairs are (3,4),(4,3),(7,0),(0,7)
	if cl.NNZ[0*2+1] != 2 || cl.NNZ[1*2+0] != 2 {
		t.Fatalf("off-diagonal counts wrong: %v", cl.NNZ)
	}
	if cl.DiagonalNNZFraction() <= 0.8 {
		t.Fatalf("diag fraction=%v", cl.DiagonalNNZFraction())
	}
}

func TestNewClusterLayoutRejectsBadBounds(t *testing.T) {
	p := ringPattern(8)
	if _, err := NewClusterLayout(p, []int32{0, 4}); err == nil {
		t.Fatal("expected error for bounds not covering S")
	}
}

func TestClusterSparsity(t *testing.T) {
	p := Dense(4)
	cl, _ := NewClusterLayout(p, []int32{0, 2, 4})
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if cl.ClusterSparsity(a, b) != 1.0 {
				t.Fatal("dense pattern clusters must have β_C = 1")
			}
		}
	}
}

func TestReformZeroThresholdKeepsEverything(t *testing.T) {
	p := ringPattern(16)
	cl, _ := NewClusterLayout(p, []int32{0, 4, 8, 12, 16})
	r := Reform(cl, 4, 0)
	if r.Transferred != 0 || len(r.Blocks) != 0 {
		t.Fatalf("βthre=0 must transfer nothing: %d blocks", len(r.Blocks))
	}
	eff := r.EffectivePattern()
	if eff.NNZ() != p.NNZ() {
		t.Fatal("effective pattern must equal original")
	}
	for i := 0; i < p.S; i++ {
		for _, j := range p.Row(i) {
			if !eff.Has(int32(i), j) {
				t.Fatal("entry lost")
			}
		}
	}
}

func TestReformTransfersSparseClusters(t *testing.T) {
	// dense diagonal clusters + a few scattered cross entries
	var pairs []graph.Edge
	for c := 0; c < 2; c++ {
		base := int32(c * 8)
		for i := int32(0); i < 8; i++ {
			for j := int32(0); j < 8; j++ {
				pairs = append(pairs, graph.Edge{U: base + i, V: base + j})
			}
		}
	}
	pairs = append(pairs, graph.Edge{U: 1, V: 9}, graph.Edge{U: 3, V: 14}, graph.Edge{U: 6, V: 12})
	p := FromPairs(16, pairs)
	cl, _ := NewClusterLayout(p, []int32{0, 8, 16})
	r := Reform(cl, 2, 0.5)
	if r.Transferred != 1 {
		t.Fatalf("expected exactly the (0,1) cluster transferred, got %d", r.Transferred)
	}
	if len(r.Blocks) == 0 {
		t.Fatal("expected sub-blocks")
	}
	// diagonal clusters preserved exactly
	for i := int32(0); i < 8; i++ {
		for j := int32(0); j < 8; j++ {
			if !r.Keep.Has(i, j) {
				t.Fatal("dense diagonal entry lost")
			}
		}
	}
	// sub-blocks stay inside the transferred cluster's bounds
	for _, b := range r.Blocks {
		if b.Row0 < 0 || b.Row0+2 > 8 || b.Col0 < 8 || b.Col0+2 > 16 {
			t.Fatalf("block (%d,%d) escapes cluster (0,1)", b.Row0, b.Col0)
		}
	}
}

func TestReformIndolent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _ := graph.SBM(graph.SBMConfig{BlockSizes: []int{32, 32, 32, 32}, AvgDegIn: 10, AvgDegOut: 1}, rng)
	p := FromGraph(g)
	cl, _ := NewClusterLayout(p, []int32{0, 32, 64, 96, 128})
	r := ReformIndolent(cl, 4)
	// diagonal clusters are denser than βG, so they must not be transferred
	if r.Transferred == 0 {
		t.Fatal("expected some sparse off-diagonal clusters transferred")
	}
	if r.Transferred >= r.Clusters {
		t.Fatal("indolent mode must keep the dense diagonal clusters")
	}
	if err := r.Keep.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: reformation never grows the attended-pair count above
// keep + blocks*db² and the effective pattern is always valid CSR.
func TestReformEffectiveBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := graph.SBM(graph.SBMConfig{BlockSizes: []int{16, 16, 16, 16}, AvgDegIn: 6, AvgDegOut: 2}, rng)
		p := FromGraph(g)
		cl, err := NewClusterLayout(p, []int32{0, 16, 32, 48, 64})
		if err != nil {
			return false
		}
		db := 2 + rng.Intn(4)
		r := Reform(cl, db, rng.Float64()*0.2)
		eff := r.EffectivePattern()
		if eff.Validate() != nil {
			return false
		}
		return eff.NNZ() <= r.Keep.NNZ()+len(r.Blocks)*db*db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaSet(t *testing.T) {
	s := BetaSet(0.01)
	if len(s) != 7 || s[0] != 0 || s[6] != 1 {
		t.Fatalf("beta set wrong: %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("beta set must be non-decreasing for βG < 0.1")
		}
	}
}

func TestSnapAnchor(t *testing.T) {
	if snapAnchor(5, 0, 16, 4) != 4 {
		t.Fatal("snap down to grid")
	}
	if snapAnchor(15, 0, 16, 4) != 12 {
		t.Fatal("clamp so block fits")
	}
	if snapAnchor(1, 0, 3, 4) != 0 {
		t.Fatal("clamp to lo when range smaller than db")
	}
}

func TestBigBirdPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := BigBird(32, 2, 2, 1, rng)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 32; i++ {
		if !p.Has(i, i) {
			t.Fatal("bigbird must include self attention")
		}
		if !p.Has(i, 0) || !p.Has(0, i) {
			t.Fatal("bigbird global tokens must attend everything")
		}
	}
	if !p.Has(10, 11) || !p.Has(10, 8) {
		t.Fatal("window pairs missing")
	}
	// sparse relative to dense
	if p.Sparsity() > 0.5 {
		t.Fatalf("bigbird too dense: %v", p.Sparsity())
	}
}
