package sparse

import (
	"fmt"

	"torchgt/internal/graph"
)

// ClusterLayout describes a pattern partitioned into a k×k grid of clusters
// by row/column boundaries (the paper's Fig. 5(b) clustered attention
// layout). Bounds has length k+1 with Bounds[0]=0 and Bounds[k]=S.
type ClusterLayout struct {
	P      *Pattern
	K      int
	Bounds []int32
	// NNZ[a*K+b] = attended pairs inside cluster (a, b).
	NNZ []int64
}

// NewClusterLayout computes per-cluster statistics of p under bounds.
func NewClusterLayout(p *Pattern, bounds []int32) (*ClusterLayout, error) {
	k := len(bounds) - 1
	if k < 1 || bounds[0] != 0 || int(bounds[k]) != p.S {
		return nil, fmt.Errorf("sparse: invalid bounds (k=%d, S=%d)", k, p.S)
	}
	cl := &ClusterLayout{P: p, K: k, Bounds: bounds, NNZ: make([]int64, k*k)}
	rowOf := makeBucketLookup(bounds, p.S)
	for i := 0; i < p.S; i++ {
		a := rowOf[i]
		for _, j := range p.Row(i) {
			b := rowOf[j]
			cl.NNZ[int(a)*k+int(b)]++
		}
	}
	return cl, nil
}

// makeBucketLookup expands bounds into a per-position bucket index.
func makeBucketLookup(bounds []int32, s int) []int32 {
	out := make([]int32, s)
	for b := 0; b+1 < len(bounds); b++ {
		for i := bounds[b]; i < bounds[b+1]; i++ {
			out[i] = int32(b)
		}
	}
	return out
}

// ClusterSparsity returns β_C of cluster (a, b): NNZ / (rows × cols).
func (cl *ClusterLayout) ClusterSparsity(a, b int) float64 {
	rows := float64(cl.Bounds[a+1] - cl.Bounds[a])
	cols := float64(cl.Bounds[b+1] - cl.Bounds[b])
	if rows == 0 || cols == 0 {
		return 0
	}
	return float64(cl.NNZ[a*cl.K+b]) / (rows * cols)
}

// DiagonalNNZFraction returns the fraction of pairs lying in diagonal
// clusters — the locality the cluster reordering is supposed to create.
func (cl *ClusterLayout) DiagonalNNZFraction() float64 {
	if cl.P.NNZ() == 0 {
		return 0
	}
	var diag int64
	for a := 0; a < cl.K; a++ {
		diag += cl.NNZ[a*cl.K+a]
	}
	return float64(diag) / float64(cl.P.NNZ())
}

// SubBlock is a db×db dense block anchored at (Row0, Col0): all pairs
// (Row0+i, Col0+j) for i, j < Db are attended. Sub-blocks are the unit of the
// cluster-sparse format: dense in memory, cheap to compute.
type SubBlock struct {
	Row0, Col0 int32
}

// Reformed is a pattern in cluster-sparse form: untransferred clusters stay
// in CSR (Keep), transferred clusters are replaced by compact dense
// sub-blocks (Blocks). This is the output of the Elastic Computation
// Reformation and the input to the cluster-sparse attention kernel.
type Reformed struct {
	S           int
	Db          int
	Keep        *Pattern
	Blocks      []SubBlock
	Transferred int // clusters transferred
	Clusters    int // total non-empty clusters
}

// EffectivePattern materialises the union pattern actually attended after
// reformation (Keep ∪ Blocks), for reference kernels and convergence
// semantics.
func (r *Reformed) EffectivePattern() *Pattern {
	pairs := make([]graph.Edge, 0, r.Keep.NNZ()+len(r.Blocks)*r.Db*r.Db)
	for i := 0; i < r.Keep.S; i++ {
		for _, j := range r.Keep.Row(i) {
			pairs = append(pairs, graph.Edge{U: int32(i), V: j})
		}
	}
	for _, b := range r.Blocks {
		for i := int32(0); i < int32(r.Db); i++ {
			if b.Row0+i >= int32(r.S) {
				break
			}
			for j := int32(0); j < int32(r.Db); j++ {
				if b.Col0+j >= int32(r.S) {
					break
				}
				pairs = append(pairs, graph.Edge{U: b.Row0 + i, V: b.Col0 + j})
			}
		}
	}
	return FromPairs(r.S, pairs)
}

// Reform applies the cluster-sparse transfer: every cluster (a, b) whose
// sparsity β_C is below betaThre has its scattered entries compacted into
// db×db sub-blocks anchored near the entries' centroid rows/cols (grid-
// snapped, clamped inside the cluster). Entries of kept clusters are
// preserved exactly. betaThre=0 transfers nothing; betaThre=1 transfers all
// clusters that are not fully dense.
func Reform(cl *ClusterLayout, db int, betaThre float64) *Reformed {
	p := cl.P
	k := cl.K
	r := &Reformed{S: p.S, Db: db}
	transfer := make([]bool, k*k)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if cl.NNZ[a*k+b] == 0 {
				continue
			}
			r.Clusters++
			bc := cl.ClusterSparsity(a, b)
			if bc < betaThre && bc < 1.0 {
				transfer[a*k+b] = true
				r.Transferred++
			}
		}
	}
	rowOf := makeBucketLookup(cl.Bounds, p.S)
	// collect entries per transferred cluster; keep the rest
	var keepPairs []graph.Edge
	clusterEntries := make(map[int][]graph.Edge)
	for i := 0; i < p.S; i++ {
		a := rowOf[i]
		for _, j := range p.Row(i) {
			b := rowOf[j]
			key := int(a)*k + int(b)
			if transfer[key] {
				clusterEntries[key] = append(clusterEntries[key], graph.Edge{U: int32(i), V: j})
			} else {
				keepPairs = append(keepPairs, graph.Edge{U: int32(i), V: j})
			}
		}
	}
	// compact each transferred cluster's entries into sub-blocks: entries are
	// taken in (row, col) order, grouped into runs of db² and each run
	// becomes one block anchored at its centroid, snapped to the db grid and
	// clamped inside the cluster.
	for key := 0; key < k*k; key++ {
		entries := clusterEntries[key]
		if len(entries) == 0 {
			continue
		}
		a, b := key/k, key%k
		rLo, rHi := cl.Bounds[a], cl.Bounds[a+1]
		cLo, cHi := cl.Bounds[b], cl.Bounds[b+1]
		per := db * db
		for off := 0; off < len(entries); off += per {
			end := off + per
			if end > len(entries) {
				end = len(entries)
			}
			run := entries[off:end]
			var sr, sc int64
			for _, e := range run {
				sr += int64(e.U)
				sc += int64(e.V)
			}
			anchorR := snapAnchor(int32(sr/int64(len(run))), rLo, rHi, int32(db))
			anchorC := snapAnchor(int32(sc/int64(len(run))), cLo, cHi, int32(db))
			r.Blocks = append(r.Blocks, SubBlock{Row0: anchorR, Col0: anchorC})
		}
	}
	r.Keep = FromPairs(p.S, keepPairs)
	return r
}

// snapAnchor snaps v to the db grid relative to lo and clamps so the block
// [anchor, anchor+db) fits inside [lo, hi) when the range allows.
func snapAnchor(v, lo, hi, db int32) int32 {
	a := lo + (v-lo)/db*db
	if a+db > hi {
		a = hi - db
	}
	if a < lo {
		a = lo
	}
	return a
}

// ReformIndolent applies the paper's Indolent Transferring strategy: only
// clusters sparser than the whole-graph sparsity β_G are transferred.
func ReformIndolent(cl *ClusterLayout, db int) *Reformed {
	return Reform(cl, db, cl.P.Sparsity())
}

// BetaSet returns the Auto Tuner's candidate threshold ladder
// {0, βG, 1.5βG, 5βG, 7βG, 10βG, 1} for the given graph sparsity.
func BetaSet(betaG float64) []float64 {
	return []float64{0, betaG, 1.5 * betaG, 5 * betaG, 7 * betaG, 10 * betaG, 1}
}
