// Package sparse defines attention sparsity patterns over token sequences:
// the topology-induced pattern of Dual-interleaved Attention, the clustered
// layout produced by Cluster-aware Graph Parallelism, and the cluster-sparse
// reformation (sub-block compaction) of the Elastic Computation Reformation.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"

	"torchgt/internal/graph"
)

// Pattern is a sparse attention pattern in CSR over sequence positions: token
// i may attend token j iff (i, j) is present. Rows are sorted ascending.
type Pattern struct {
	S      int
	RowPtr []int32
	ColIdx []int32
}

// NNZ returns the number of attended pairs.
func (p *Pattern) NNZ() int { return len(p.ColIdx) }

// Row returns the attended positions of token i.
func (p *Pattern) Row(i int) []int32 { return p.ColIdx[p.RowPtr[i]:p.RowPtr[i+1]] }

// Sparsity returns NNZ / S² (the paper's β).
func (p *Pattern) Sparsity() float64 {
	if p.S == 0 {
		return 0
	}
	return float64(p.NNZ()) / (float64(p.S) * float64(p.S))
}

// Has reports whether pair (i, j) is in the pattern.
func (p *Pattern) Has(i, j int32) bool {
	row := p.Row(int(i))
	k := sort.Search(len(row), func(x int) bool { return row[x] >= j })
	return k < len(row) && row[k] == j
}

// Validate checks CSR invariants.
func (p *Pattern) Validate() error {
	if len(p.RowPtr) != p.S+1 {
		return fmt.Errorf("sparse: RowPtr len %d != S+1", len(p.RowPtr))
	}
	if p.RowPtr[0] != 0 || int(p.RowPtr[p.S]) != len(p.ColIdx) {
		return fmt.Errorf("sparse: RowPtr endpoints invalid")
	}
	for i := 0; i < p.S; i++ {
		if p.RowPtr[i] > p.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at %d", i)
		}
		row := p.Row(i)
		for k, v := range row {
			if v < 0 || int(v) >= p.S {
				return fmt.Errorf("sparse: col %d out of range in row %d", v, i)
			}
			if k > 0 && row[k-1] >= v {
				return fmt.Errorf("sparse: row %d not strictly sorted", i)
			}
		}
	}
	return nil
}

// FromGraph builds the local topology-induced pattern over a graph whose
// nodes are the sequence tokens. Self-loops are always added (condition C1).
func FromGraph(g *graph.Graph) *Pattern {
	gl := g.WithSelfLoops()
	return &Pattern{S: gl.N, RowPtr: gl.RowPtr, ColIdx: gl.ColIdx}
}

// LocalEdgeBuckets assigns an SPD bias bucket to every pattern entry: 0 for
// self-attention, 1 for direct edges (the only distances a topology-induced
// pattern contains), with globalBucket for pairs touching token 0 when
// hasGlobal. This is THE bucket convention shared by the training loops and
// the serving engine — change it in one place only.
func (p *Pattern) LocalEdgeBuckets(hasGlobal bool, globalBucket int32) []int32 {
	out := make([]int32, p.NNZ())
	idx := 0
	for i := 0; i < p.S; i++ {
		for _, j := range p.Row(i) {
			switch {
			case int32(i) == j:
				out[idx] = 0
			case hasGlobal && (i == 0 || j == 0):
				out[idx] = globalBucket
			default:
				out[idx] = 1
			}
			idx++
		}
	}
	return out
}

// FromPairs builds a pattern from an explicit pair list (deduplicated).
func FromPairs(s int, pairs []graph.Edge) *Pattern {
	g := graph.FromEdges(s, pairs, false)
	return &Pattern{S: s, RowPtr: g.RowPtr, ColIdx: g.ColIdx}
}

// WithGlobalToken returns a pattern over S+1 tokens where new token 0 is a
// global token attending to and attended by every token, and original token
// i becomes token i+1 (used by graph-level tasks' readout token).
func (p *Pattern) WithGlobalToken() *Pattern {
	s := p.S + 1
	pairs := make([]graph.Edge, 0, p.NNZ()+2*s)
	for i := 0; i < p.S; i++ {
		for _, j := range p.Row(i) {
			pairs = append(pairs, graph.Edge{U: int32(i + 1), V: j + 1})
		}
	}
	for i := 0; i < s; i++ {
		pairs = append(pairs, graph.Edge{U: 0, V: int32(i)})
		pairs = append(pairs, graph.Edge{U: int32(i), V: 0})
	}
	return FromPairs(s, pairs)
}

// Permute relabels pattern positions: new position perm[i] plays old
// position i's role (same convention as graph.Permute).
func (p *Pattern) Permute(perm []int32) *Pattern {
	pairs := make([]graph.Edge, 0, p.NNZ())
	for i := 0; i < p.S; i++ {
		for _, j := range p.Row(i) {
			pairs = append(pairs, graph.Edge{U: perm[i], V: perm[j]})
		}
	}
	return FromPairs(p.S, pairs)
}

// Dense returns the full S×S pattern (every pair attended).
func Dense(s int) *Pattern {
	rowPtr := make([]int32, s+1)
	colIdx := make([]int32, s*s)
	for i := 0; i < s; i++ {
		rowPtr[i+1] = int32((i + 1) * s)
		for j := 0; j < s; j++ {
			colIdx[i*s+j] = int32(j)
		}
	}
	return &Pattern{S: s, RowPtr: rowPtr, ColIdx: colIdx}
}

// SubPattern returns the pattern induced on token range [lo, hi) with
// positions shifted to [0, hi-lo): only pairs with both endpoints inside the
// range survive. Used to restrict attention to a local shard.
func (p *Pattern) SubPattern(lo, hi int) *Pattern {
	var pairs []graph.Edge
	for i := lo; i < hi; i++ {
		for _, j := range p.Row(i) {
			if int(j) >= lo && int(j) < hi {
				pairs = append(pairs, graph.Edge{U: int32(i - lo), V: j - int32(lo)})
			}
		}
	}
	return FromPairs(hi-lo, pairs)
}

// BigBird builds an NLP-style structure-agnostic sparse pattern (window +
// global + random attention, after Zaheer et al.) over s tokens. The paper's
// issue I2 argues such patterns "fail to consider the inherent graph
// structure ... resulting in subpar model performance"; the
// ablation-bigbird experiment reproduces that comparison against the
// topology-induced pattern at matched density.
func BigBird(s, window, nGlobal, randPerRow int, rng *rand.Rand) *Pattern {
	var pairs []graph.Edge
	add := func(i, j int) {
		if i >= 0 && i < s && j >= 0 && j < s {
			pairs = append(pairs, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	for i := 0; i < s; i++ {
		add(i, i)
		for w := 1; w <= window; w++ {
			add(i, i-w)
			add(i, i+w)
		}
		for g := 0; g < nGlobal; g++ {
			add(i, g)
			add(g, i)
		}
		for r := 0; r < randPerRow; r++ {
			add(i, rng.Intn(s))
		}
	}
	return FromPairs(s, pairs)
}
