// Distributed example: Cluster-aware Graph Parallelism across 4 simulated
// workers (goroutines exchanging tensors through channel collectives). Each
// layer reshards sequence↔heads with two all-to-alls, attention runs over
// the full gathered sequence per local head, and weight gradients are
// all-reduced — a numerically real implementation of the paper's §III-C.
package main

import (
	"fmt"
	"log"

	"torchgt"
)

func main() {
	const workers = 4
	ds, err := torchgt.LoadNodeDataset("arxiv-sim", 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 7)
	cfg.Dropout = 0 // the distributed runner is dropout-free

	trainer := torchgt.NewDistTrainer(workers, cfg, 2e-3)
	in := torchgt.NodeInputs(ds)
	spec := torchgt.SparseNodeSpec(ds)

	fmt.Printf("training on %d workers, S=%d, %d heads (%d per worker)\n",
		workers, ds.G.N, cfg.Heads, cfg.Heads/workers)
	for step := 0; step < 10; step++ {
		loss := trainer.Step(in, spec, ds.Y, ds.TrainMask)
		fmt.Printf("step %2d  loss %.4f  comm so far %.1f MB\n",
			step, loss, float64(trainer.Comm.TotalBytes())/(1<<20))
	}

	// per-worker communication: the Ulysses all-to-all volume is O(S·d/P)
	for r := 0; r < workers; r++ {
		fmt.Printf("rank %d sent %.1f MB\n", r, float64(trainer.Comm.BytesSent(r))/(1<<20))
	}
}
