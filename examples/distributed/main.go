// Distributed example: sequence parallelism as an execution plan. The same
// Session API that trains serially trains across 4 simulated ranks when
// WithSeqParallel is set: every rank owns S/4 sequence rows, each attention
// layer reshards sequence↔heads with channel all-to-alls (the
// DeepSpeed-Ulysses schedule behind the paper's Cluster-aware Graph
// Parallelism, §III-C), and each optimiser step ends with the fixed-order
// gradient-synchronisation collective. The training trajectory — losses,
// accuracies, weights — is bitwise identical to the serial run, which this
// example verifies.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"torchgt"
)

func main() {
	const ranks = 4
	ds, err := torchgt.LoadNodeDataset("arxiv-sim", 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 7)

	train := func(opts ...torchgt.SessionOption) *torchgt.Session {
		base := []torchgt.SessionOption{
			torchgt.WithEpochs(8), torchgt.WithLR(2e-3), torchgt.WithSeed(7),
		}
		s, err := torchgt.NewSession(torchgt.MethodTorchGT, cfg, torchgt.NodeTask(ds),
			append(base, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Run(context.Background()); err != nil {
			log.Fatal(err)
		}
		return s
	}

	fmt.Printf("training on %d ranks, S=%d, %d heads (%d per rank)\n",
		ranks, ds.G.N, cfg.Heads, cfg.Heads/ranks)
	par := train(torchgt.WithSeqParallel(ranks),
		torchgt.WithEventSink(func(e torchgt.Event) {
			if ep, ok := e.(torchgt.EpochEvent); ok {
				fmt.Printf("epoch %2d  loss %.4f  test-acc %.4f\n",
					ep.Epoch, ep.Point.Loss, ep.Point.TestAcc)
			}
		}))
	fmt.Printf("collective traffic: %.1f MB over %d epochs\n",
		float64(par.CommBytes())/(1<<20), par.Epoch())

	// The tentpole guarantee: scaling out changes no numbers.
	serial := train()
	bitwise := true
	ps, pp := serial.Model().Params(), par.Model().Params()
	for i := range ps {
		for j := range ps[i].W.Data {
			if math.Float32bits(ps[i].W.Data[j]) != math.Float32bits(pp[i].W.Data[j]) {
				bitwise = false
			}
		}
	}
	fmt.Println("bitwise equal to serial training:", bitwise)
}
