// Checkpointing: the Session lifecycle end to end — train with an event
// stream, cancel mid-run, checkpoint, resume in a "new process", and verify
// the resumed run lands exactly where an uninterrupted run would have.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"torchgt"
)

func main() {
	ds, err := torchgt.LoadNodeDataset("arxiv-sim", 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 1)
	const epochs = 10

	dir, err := os.MkdirTemp("", "torchgt-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference: one uninterrupted session.
	ref, err := torchgt.NewSession(torchgt.MethodTorchGT, cfg, torchgt.NodeTask(ds),
		torchgt.WithEpochs(epochs), torchgt.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := ref.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: %d epochs, final accuracy %.2f%%\n",
		len(refRes.Curve), refRes.FinalTestAcc*100)

	// Same run, but cancelled from its own event stream after epoch 4...
	ctx, cancel := context.WithCancel(context.Background())
	sess, err := torchgt.NewSession(torchgt.MethodTorchGT, cfg, torchgt.NodeTask(ds),
		torchgt.WithEpochs(epochs), torchgt.WithSeed(7),
		torchgt.WithEventSink(func(e torchgt.Event) {
			switch ev := e.(type) {
			case torchgt.EpochEvent:
				fmt.Printf("  epoch %d: loss %.4f acc %.2f%%\n",
					ev.Epoch, ev.Point.Loss, ev.Point.TestAcc*100)
				if ev.Epoch == 4 {
					cancel() // deploy rolled, spot instance reclaimed, ^C ...
				}
			case torchgt.BetaEvent:
				fmt.Printf("  auto-tuner: βthre → %.5f\n", ev.Beta)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	partial, err := sess.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected cancellation, got %v", err)
	}
	fmt.Printf("cancelled after %d epochs; checkpointing\n", len(partial.Curve))

	// ...checkpointed, and resumed as if in a fresh process.
	path := filepath.Join(dir, "run.ckpt")
	if err := sess.Checkpoint(path); err != nil {
		log.Fatal(err)
	}
	resumed, err := torchgt.ResumeSession(path, torchgt.NodeTask(ds))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed %s at epoch %d\n", filepath.Base(path), resumed.Epoch())
	resRes, err := resumed.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The resumed run must be indistinguishable from the uninterrupted one —
	// bitwise, not approximately.
	same := refRes.FinalTestAcc == resRes.FinalTestAcc
	for i, p := range refRes.Curve {
		if p.Loss != resRes.Curve[i].Loss {
			same = false
		}
	}
	ra, rb := ref.Model().Params(), resumed.Model().Params()
	for i := range ra {
		for j := range ra[i].W.Data {
			if math.Float32bits(ra[i].W.Data[j]) != math.Float32bits(rb[i].W.Data[j]) {
				same = false
			}
		}
	}
	fmt.Printf("resume ≡ uninterrupted (weights, losses, accuracy): %v\n", same)
	if !same {
		os.Exit(1)
	}
}
