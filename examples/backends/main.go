// Compute-backend example: activate the optimized backend, print what its
// panel-width autotuner measured and chose (and the per-kernel speedups over
// the reference backend), then train the same session on both backends and
// compare wall-clock and accuracy.
package main

import (
	"fmt"
	"log"
	"time"

	"torchgt"
)

func main() {
	// Activating the optimized backend runs the panel-width sweep once.
	if _, err := torchgt.SetBackend("opt"); err != nil {
		log.Fatal(err)
	}
	rep, ok := torchgt.BackendTuningReport()
	if !ok {
		log.Fatal("optimized backend active but no tuning report")
	}

	fmt.Println("panel-width sweeps (ns per kernel call, best of 3):")
	for _, t := range rep.Tunings {
		fmt.Printf("  %-8s chosen %3d  |", t.Kernel, t.Chosen)
		for i, w := range t.Candidates {
			mark := " "
			if w == t.Chosen {
				mark = "*"
			}
			fmt.Printf("  %s%d: %.0f", mark, w, t.NsPerOp[i])
		}
		fmt.Println()
	}

	fmt.Println("\nper-kernel speedup over the reference backend (tuning workload):")
	for _, s := range rep.Speedups {
		fmt.Printf("  %-8s  ref %8.0f ns  opt %8.0f ns  %.2fx\n", s.Kernel, s.RefNs, s.OptNs, s.Speedup)
	}

	// Same dataset, same seed, both backends. The reference trajectory is the
	// bitwise-pinned one; the optimized run lands within a small tolerance of
	// it (see DESIGN.md "Compute backends and quantized serving") but steps
	// measurably faster.
	ds, err := torchgt.LoadNodeDataset("arxiv-sim", 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraining gph-slim on arxiv-sim, 10 epochs, both backends:")
	for _, name := range torchgt.BackendNames() {
		if _, err := torchgt.SetBackend(name); err != nil {
			log.Fatal(err)
		}
		cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 1)
		start := time.Now()
		res, err := torchgt.TrainNode(torchgt.MethodTorchGT, cfg, ds,
			torchgt.TrainOptions{Epochs: 10, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s %8.2fs wall  final loss %.4f  test acc %.2f%%\n",
			name, time.Since(start).Seconds(), res.Curve[len(res.Curve)-1].Loss, res.FinalTestAcc*100)
	}
	if _, err := torchgt.SetBackend("ref"); err != nil {
		log.Fatal(err)
	}
}
