// Graph-level example: ZINC-style molecular property regression with the GT
// model (Laplacian positional encodings + SPD bias) and malnet-sim
// classification with Graphormer — the two graph-level task families of the
// paper's Table III.
package main

import (
	"fmt"
	"log"

	"torchgt"
)

func main() {
	// --- regression: zinc-sim ---
	zinc, err := torchgt.LoadGraphDataset("zinc-sim", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zinc-sim: %d molecule-like graphs (regression)\n", len(zinc.Graphs))
	cfg := torchgt.GT(zinc.FeatDim, 1, 2)
	_, mae, err := torchgt.TrainGraphLevel(torchgt.MethodTorchGT, cfg, zinc,
		torchgt.TrainOptions{Epochs: 8, BatchSize: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GT on zinc-sim: test MAE %.4f\n\n", mae)

	// --- classification: molpcba-sim ---
	mol, err := torchgt.LoadGraphDataset("molpcba-sim", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("molpcba-sim: %d graphs, %d classes\n", len(mol.Graphs), mol.NumClasses)
	cfg2 := torchgt.GraphormerSlim(mol.FeatDim, mol.NumClasses, 5)
	res, _, err := torchgt.TrainGraphLevel(torchgt.MethodTorchGT, cfg2, mol,
		torchgt.TrainOptions{Epochs: 6, BatchSize: 8, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Graphormer on molpcba-sim: test accuracy %.2f%% (preprocess %.2fs)\n",
		res.FinalTestAcc*100, res.PreprocessTime.Seconds())
}
