// Quickstart: train Graphormer-Slim on the arxiv-sim dataset with the full
// TorchGT pipeline (cluster reorder → dual-interleaved attention → elastic
// reformation with Auto Tuner) and compare it against the GP-Flash baseline.
package main

import (
	"fmt"
	"log"

	"torchgt"
)

func main() {
	ds, err := torchgt.LoadNodeDataset("arxiv-sim", 1024, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d nodes, %d edges, %d classes\n",
		ds.Name, ds.G.N, ds.G.NumEdges(), ds.NumClasses)

	cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 1)
	opts := torchgt.TrainOptions{Epochs: 15, Seed: 2}

	tgt, err := torchgt.TrainNode(torchgt.MethodTorchGT, cfg, ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	flash, err := torchgt.TrainNode(torchgt.MethodGPFlash, cfg, ds, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %-12s %-12s %-14s\n", "method", "test acc", "avg epoch", "attended pairs")
	for _, r := range []*torchgt.Result{tgt, flash} {
		fmt.Printf("%-10s %-12.4f %-12s %-14d\n", r.Method, r.FinalTestAcc, r.AvgEpochTime, r.TotalPairs)
	}
	fmt.Printf("\nTorchGT attended %.1fx fewer pairs than GP-Flash at comparable accuracy.\n",
		float64(flash.TotalPairs)/float64(tgt.TotalPairs))
}
