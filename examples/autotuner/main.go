// Auto Tuner example: the two autotuners in the system, back to back.
//
// First the compute-backend tuner: activating the optimized backend sweeps
// panel widths for the matrix kernels and measures per-kernel speedups over
// the reference backend (printed below; see examples/backends for the full
// backend demo).
//
// Then the paper's Auto Tuner: watch the Elastic Computation Reformation
// adapt the transfer threshold βthre along the ladder {0, βG, …, 1} as
// training progresses, trading reformation aggressiveness against loss
// descent rate.
package main

import (
	"fmt"
	"log"

	"torchgt"
)

// printBackendTuning activates the optimized backend (which autotunes on
// first activation), prints the sweep, and restores the reference default so
// the training below stays on the bitwise-pinned kernels.
func printBackendTuning() {
	prev, err := torchgt.SetBackend("opt")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if _, err := torchgt.SetBackend(prev); err != nil {
			log.Fatal(err)
		}
	}()
	rep, ok := torchgt.BackendTuningReport()
	if !ok {
		log.Fatal("optimized backend active but no tuning report")
	}
	fmt.Println("optimized-backend panel autotune (chosen width per kernel):")
	for _, t := range rep.Tunings {
		fmt.Printf("  %-8s -> %d\n", t.Kernel, t.Chosen)
	}
	fmt.Println("per-kernel speedup over reference (tuning workload):")
	for _, s := range rep.Speedups {
		fmt.Printf("  %-8s %.2fx\n", s.Kernel, s.Speedup)
	}
	fmt.Println()
}

func main() {
	printBackendTuning()

	ds, err := torchgt.LoadNodeDataset("products-sim", 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 8)

	res, err := torchgt.TrainNode(torchgt.MethodTorchGT, cfg, ds,
		torchgt.TrainOptions{Epochs: 25, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("β_G (graph sparsity) = %.6f\n\n", ds.G.Sparsity())
	fmt.Println("epoch  βthre      loss     test-acc  pairs")
	for _, p := range res.Curve {
		fmt.Printf("%5d  %-9.6f  %-7.4f  %-8.4f  %d\n", p.Epoch, p.Beta, p.Loss, p.TestAcc, p.Pairs)
	}
	fmt.Printf("\nfinal accuracy %.2f%%; the tuner moves βthre up when the loss descent\n", res.FinalTestAcc*100)
	fmt.Println("rate holds (more clusters compacted into sub-blocks = faster epochs) and")
	fmt.Println("steps back down when descent stalls.")
}
