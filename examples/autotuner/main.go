// Auto Tuner example: watch the Elastic Computation Reformation adapt the
// transfer threshold βthre along the paper's ladder {0, βG, …, 1} as
// training progresses, trading reformation aggressiveness against loss
// descent rate.
package main

import (
	"fmt"
	"log"

	"torchgt"
)

func main() {
	ds, err := torchgt.LoadNodeDataset("products-sim", 2048, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := torchgt.GraphormerSlim(ds.X.Cols, ds.NumClasses, 8)

	res, err := torchgt.TrainNode(torchgt.MethodTorchGT, cfg, ds,
		torchgt.TrainOptions{Epochs: 25, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("β_G (graph sparsity) = %.6f\n\n", ds.G.Sparsity())
	fmt.Println("epoch  βthre      loss     test-acc  pairs")
	for _, p := range res.Curve {
		fmt.Printf("%5d  %-9.6f  %-7.4f  %-8.4f  %d\n", p.Epoch, p.Beta, p.Loss, p.TestAcc, p.Pairs)
	}
	fmt.Printf("\nfinal accuracy %.2f%%; the tuner moves βthre up when the loss descent\n", res.FinalTestAcc*100)
	fmt.Println("rate holds (more clusters compacted into sub-blocks = faster epochs) and")
	fmt.Println("steps back down when descent stalls.")
}
