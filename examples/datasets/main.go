// Datasets: the provider-registry data API end to end — generate a
// synthetic preset from a spec, save it as a universal tGDS container,
// ingest an external CSV edge list, stack declarative transforms, and
// train through a Session built straight from a spec string (which records
// the spec into checkpoints, so a resume needs no dataset code at all).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"torchgt"
)

func main() {
	dir, err := os.MkdirTemp("", "torchgt-datasets")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A spec names a dataset: provider scheme + name + params + seed.
	//    Same spec ⇒ bitwise-same dataset, every time.
	d, err := torchgt.OpenDataset("synth://arxiv-sim?nodes=1024&seed=1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %s: %d nodes, %d edges, %d classes\n",
		d.Name(), d.Node.G.N, d.Node.G.NumEdges(), d.Node.NumClasses)

	// 2. Any dataset — either kind — round-trips through one container.
	tgds := filepath.Join(dir, "arxiv.tgds")
	if err := torchgt.SaveDataset(tgds, d); err != nil {
		log.Fatal(err)
	}
	back, err := torchgt.OpenDataset("file://" + tgds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tGDS round trip: %d nodes back from %s\n", back.Node.G.N, filepath.Base(tgds))

	// 3. External data streams in line by line (no whole-file slurp): a CSV
	//    edge list with a labels file becomes a trainable node dataset.
	csv := filepath.Join(dir, "edges.csv")
	labels := filepath.Join(dir, "labels.csv")
	writeFixture(csv, labels)
	spec := fmt.Sprintf("edgelist://%s?labels=%s&featdim=16&seed=7", csv, labels)
	ingested, err := torchgt.OpenDataset(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %s: %d nodes, %d edges, %d classes\n",
		ingested.Name(), ingested.Node.G.N, ingested.Node.G.NumEdges(), ingested.Node.NumClasses)

	// 4. Transforms ride declaratively on the spec, applied in a fixed
	//    order: subsample → selfloops → permute → resplit.
	shaped, err := torchgt.OpenDataset("synth://products-sim?nodes=2048&subsample=512&selfloops=1&resplit=0.7:0.1&seed=3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformed products-sim: %d nodes, self-loop on node 0: %v\n",
		shaped.Node.G.N, shaped.Node.G.HasEdge(0, 0))

	// 5. A Session built from a spec task records the spec in checkpoints:
	//    ResumeSessionFromSpec re-opens the data by itself.
	task, err := torchgt.NodeTaskFromSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	nd := task.Data().Node
	cfg := torchgt.GraphormerSlim(nd.X.Cols, nd.NumClasses, 7)
	sess, err := torchgt.NewSession(torchgt.MethodGPSparse, cfg, task, torchgt.WithEpochs(4))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	ckpt := filepath.Join(dir, "run.ckpt")
	if err := sess.Checkpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	resumed, err := torchgt.ResumeSessionFromSpec(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d epochs on the ingested data; checkpoint resumes at epoch %d with no dataset argument\n",
		sess.Epoch(), resumed.Epoch())
	fmt.Printf("recorded spec: %s\n", task.DataSpec())
}

// writeFixture emits a two-community ring graph as CSV edge + label files.
func writeFixture(csv, labels string) {
	const half = 100
	var eb, lb []byte
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			eb = fmt.Appendf(eb, "%d,%d\n%d,%d\n", base+i, base+(i+1)%half, base+i, base+(i+9)%half)
			lb = fmt.Appendf(lb, "%d,%d\n", base+i, c)
		}
	}
	for i := 0; i < 8; i++ {
		eb = fmt.Appendf(eb, "%d,%d\n", i*11, half+i*11)
	}
	if err := os.WriteFile(csv, eb, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(labels, lb, 0o644); err != nil {
		log.Fatal(err)
	}
}
