package torchgt

import (
	"fmt"

	"torchgt/internal/data/shard"
	"torchgt/internal/graph"
)

// Out-of-core sharded datasets. A node dataset too large to hold in memory
// is written once as a directory of shard files plus a manifest
// (ShardNodeDataset / `torchgt-data shard`) and then opened disk-resident
// through the shard:// spec scheme:
//
//	shard://run/arxiv-shards                      defaults (64MiB cache)
//	shard://run/arxiv-shards?cache=8MiB&block=32KiB
//	shard://run/arxiv-shards?io=mmap
//
// Every access path of the sharded view — neighbours, features, labels,
// splits, degrees — is bitwise-identical to the dataset the shards were
// written from, so ego-sampled training (TrainNodeEgoSource) and serving
// (NewServerSource, ServeRegistry.RegisterSource) produce the same numbers
// over either backing. See DESIGN.md ("Out-of-core datasets").
type (
	// ShardManifest describes a sharded dataset: header plus the shard and
	// segment tables.
	ShardManifest = shard.Manifest
	// ShardFileInfo describes one shard: row range, edge count, file size
	// and segment table.
	ShardFileInfo = shard.ShardInfo
	// ShardSegment is one (kind, offset, length) segment-table entry.
	ShardSegment = shard.Segment
)

// ShardNodeDataset writes ds into dir as a sharded tGDS dataset: shards
// shard files tiling the storage-row range (boundaries balance edge counts)
// plus a manifest, written last and atomically. The result opens with
// OpenDataset("shard://" + dir), disk-resident.
func ShardNodeDataset(dir string, ds *NodeDataset, shards int) (*ShardManifest, error) {
	return shard.Write(dir, ds, shards)
}

// LoadShardManifest reads and validates the manifest of a sharded dataset
// directory without touching the shard payloads.
func LoadShardManifest(dir string) (*ShardManifest, error) { return shard.LoadManifest(dir) }

// MaterializeNodeSource reconstructs the full in-memory dataset behind a
// node source: shard views load every segment once (the reconstruction is
// bitwise-identical to the dataset the shards were written from, pinned by
// test); sources wrapping an in-memory dataset unwrap for free.
func MaterializeNodeSource(src NodeSource) (*NodeDataset, error) {
	if nd := graph.MemDataset(src); nd != nil {
		return nd, nil
	}
	if m, ok := src.(interface {
		Materialize() (*graph.NodeDataset, error)
	}); ok {
		return m.Materialize()
	}
	return nil, fmt.Errorf("torchgt: source %q cannot be materialized", src.DatasetName())
}
