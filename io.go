package torchgt

import (
	"torchgt/internal/graph"
	"torchgt/internal/nn"
	"torchgt/internal/train"
)

// SaveModel writes a model's parameters to a checkpoint file.
func SaveModel(path string, m *GraphTransformer) error {
	return nn.SaveCheckpoint(path, m)
}

// LoadModel restores parameters into a model built from the same
// configuration.
func LoadModel(path string, m *GraphTransformer) error {
	return nn.LoadCheckpoint(path, m)
}

// SaveNodeDataset serialises a node dataset to a binary file for reuse (or
// for converted real-world data).
func SaveNodeDataset(path string, ds *NodeDataset) error {
	return graph.SaveNodeDataset(path, ds)
}

// LoadNodeDatasetFile reads a dataset written by SaveNodeDataset.
func LoadNodeDatasetFile(path string) (*NodeDataset, error) {
	return graph.LoadNodeDatasetFile(path)
}

// TrainNodeEgo trains node classification with ego-graph sampling (the
// Gophormer/NAGphormer baseline family the paper contrasts with
// long-sequence training in §II-C). opts.SeqLen bounds the ego-graph size.
// Invalid inputs (nil or mismatched dataset, no training nodes) surface as
// errors.
//
// Frozen compatibility wrapper (defaults resolve in train.EgoConfig).
func TrainNodeEgo(cfg ModelConfig, ds *NodeDataset, opts TrainOptions) (*Result, error) {
	maxSize := opts.SeqLen
	if maxSize <= 0 {
		maxSize = 32
	}
	tr := train.NewEgoTrainer(train.EgoConfig{
		Epochs: opts.Epochs, LR: opts.LR, MaxSize: maxSize,
		Batch: opts.BatchSize, Seed: opts.Seed,
	}, cfg, ds)
	return tr.Run()
}

// TrainNodeEgoSource is TrainNodeEgo over any node source. Disk-resident
// shard:// views train without materialising the graph: each step touches
// only the sampled ego contexts, read through the view's bounded block
// cache, so the memory footprint is the cache budget, not the dataset size.
// workers sets the sampling-pipeline parallelism (≤ 1 samples synchronously);
// the trajectory is bitwise-identical for every worker count and every
// backing of the same dataset, under the same seed.
func TrainNodeEgoSource(cfg ModelConfig, src NodeSource, opts TrainOptions, workers int) (*Result, error) {
	maxSize := opts.SeqLen
	if maxSize <= 0 {
		maxSize = 32
	}
	tr := train.NewEgoTrainerSource(train.EgoConfig{
		Epochs: opts.Epochs, LR: opts.LR, MaxSize: maxSize,
		Batch: opts.BatchSize, Seed: opts.Seed, Workers: workers,
	}, cfg, src)
	return tr.Run()
}
