module torchgt

go 1.24
