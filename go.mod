module torchgt

go 1.23
