package torchgt

import (
	"context"
	"fmt"
	"os"

	"torchgt/internal/dist/transport"
	"torchgt/internal/model"
	"torchgt/internal/nn"
	"torchgt/internal/train"
)

// Cross-process training. A Transport connects the ranks of one training
// job; attach one to a Session with WithTransport (and optionally
// WithDistPlan for hybrid data-parallel × sequence-parallel layouts) and
// every rank trains the same model with attention heads partitioned across
// its sequence-parallel group. The trajectory is pinned bitwise-equal to
// the single-process plans at every world size — see DESIGN.md
// "Cross-process execution".
type (
	// Transport is point-to-point communication among the ranks of one
	// job. Obtain one from Rendezvous (TCP, real processes) or MemCluster
	// (in-process, testing).
	Transport = transport.Transport
	// TransportOptions tunes the TCP transport's rendezvous and IO
	// behaviour (timeouts, retry backoff, job fingerprint).
	TransportOptions = transport.Options
)

// ErrRankLost is the typed error surfaced when a peer rank disappears
// mid-job (connection drop, process kill). Run returns it from the
// interrupted step with the training state rolled back to the last
// completed optimiser step, so survivors can Checkpoint and the job can
// resume at a new world size. Match with errors.Is.
var ErrRankLost = transport.ErrRankLost

// Rendezvous joins this process to a distributed training job over TCP.
// Rank 0 coordinates: it listens on addr while every other rank dials in;
// ranks and the world configuration are agreed before step 0 (pass rank -1
// to have the coordinator assign one). Set TransportOptions.Fingerprint to
// a digest of the job configuration — peers whose fingerprint differs are
// rejected before training starts. Close the returned transport when done.
func Rendezvous(ctx context.Context, addr string, rank, world int, o TransportOptions) (Transport, error) {
	return transport.Join(ctx, addr, rank, world, o)
}

// MemCluster builds an in-process world of connected transports, one per
// rank — the same collectives as TCP without sockets. Run each rank's
// session in its own goroutine; payloads move by pointer, so it is the
// cheap way to test distributed layouts (and the engine behind the
// simulated in-process communicator).
func MemCluster(world int) []Transport {
	mesh := transport.NewMem(world)
	ts := make([]Transport, len(mesh))
	for i, m := range mesh {
		ts[i] = m
	}
	return ts
}

// WithTransport attaches a distributed transport to the session: this
// process becomes one rank of a cross-process training job, running the
// transport's whole world as one sequence-parallel group (use WithDistPlan
// to split it into data-parallel replicas). Requires WithFixedBeta for
// TorchGT methods — the Auto Tuner adapts βthre from wall-clock epoch
// times, which would diverge across ranks — and is mutually exclusive with
// WithSeqParallel. The session does not close the transport; the caller
// owns its lifecycle.
func WithTransport(t Transport) SessionOption {
	return func(s *sessionSettings) { s.transport = t }
}

// WithDistPlan lays the transport's world out as replicas data-parallel
// replicas, each a seqRanks-wide sequence-parallel group (world =
// replicas × seqRanks; global rank g sits in replica g/seqRanks). Each
// optimiser step ends with the fixed-order cross-replica gradient mean, so
// replicas stay bitwise identical. Requires WithTransport.
func WithDistPlan(replicas, seqRanks int) SessionOption {
	return func(s *sessionSettings) {
		s.distReplicas, s.distSeqRanks, s.distSet = replicas, seqRanks, true
	}
}

// applyDist attaches the distributed execution plan to a freshly built (or
// resumed) loop — the shared wiring behind NewSession and ResumeSession.
func applyDist(st *sessionSettings, loop *train.Loop) error {
	if st.transport == nil && !st.distSet {
		return nil
	}
	if st.transport == nil {
		return fmt.Errorf("torchgt: WithDistPlan requires WithTransport")
	}
	t := st.transport
	replicas, seqRanks := st.distReplicas, st.distSeqRanks
	if !st.distSet {
		replicas, seqRanks = 1, t.World()
	}
	if replicas < 1 || seqRanks < 1 || replicas*seqRanks != t.World() {
		return fmt.Errorf("torchgt: WithDistPlan(%d, %d) needs a world of %d ranks, transport has %d",
			replicas, seqRanks, replicas*seqRanks, t.World())
	}
	cfg := loop.Cfg
	if cfg.SeqParallel > 1 {
		return fmt.Errorf("torchgt: WithSeqParallel and WithTransport are mutually exclusive — the distributed plan replaces the in-process one")
	}
	if (cfg.Method == MethodTorchGT || cfg.Method == MethodTorchGTBF16) && cfg.FixedBeta < 0 {
		return fmt.Errorf("torchgt: distributed TorchGT training requires WithFixedBeta — the Auto Tuner adapts βthre from wall-clock epoch times, which would diverge across ranks")
	}
	m := loop.Model()
	if m.Cfg.Heads%seqRanks != 0 {
		return fmt.Errorf("torchgt: model has %d attention heads, not divisible by %d sequence-parallel ranks (WithDistPlan)",
			m.Cfg.Heads, seqRanks)
	}
	eo := model.ExecOptions{PoolEnabled: true}
	if cfg.Exec != nil {
		eo = *cfg.Exec
	}
	plan, err := model.NewDistSeqParallel(t, replicas, eo)
	if err != nil {
		return err
	}
	m.SetPlan(plan)
	return nil
}

// SaveWeights writes just the model's parameters (the nn checkpoint
// encoding, no optimiser or RNG state) to path. Distributed launchers use
// it to compare final weights across ranks bitwise; load with LoadModel.
func (s *Session) SaveWeights(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := nn.SaveParams(f, s.loop.Model().Params()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
